"""Recording and forcing nondeterministic matching (controlled replay)."""

from __future__ import annotations

import pytest

from repro import mp


def wildcard_gather(comm):
    """Rank 0 collects one message per worker via ANY_SOURCE."""
    if comm.rank == 0:
        got = []
        for _ in range(comm.size - 1):
            st = mp.Status()
            got.append((comm.recv(source=mp.ANY_SOURCE, tag=1, status=st), st.source))
        return got
    comm.compute(float((comm.rank * 13) % 5))
    comm.send(f"msg-{comm.rank}", dest=0, tag=1)
    return None


class TestRecording:
    def test_comm_log_populated(self):
        rt = mp.Runtime(4)
        rt.run(wildcard_gather)
        recv_keys = [k for k in rt.comm_log.recv_matches if k[0] == 0]
        assert len(recv_keys) == 3

    def test_log_roundtrips_through_json(self, tmp_path):
        rt = mp.Runtime(4)
        rt.run(wildcard_gather)
        path = tmp_path / "log.json"
        rt.comm_log.save(path)
        loaded = mp.CommLog.load(path)
        assert loaded.recv_matches == rt.comm_log.recv_matches
        assert loaded.waitany_choices == rt.comm_log.waitany_choices


class TestForcedReplay:
    def test_replay_reproduces_wildcard_matching(self):
        rt1 = mp.Runtime(5, policy="random", seed=3)
        rt1.run(wildcard_gather)
        original = rt1.results()[0]

        rt2 = mp.Runtime(5, policy="random", seed=99, replay_log=rt1.comm_log)
        rt2.run(wildcard_gather)
        assert rt2.results()[0] == original

    def test_replay_identical_under_every_policy(self):
        rt1 = mp.Runtime(5)
        rt1.run(wildcard_gather)
        original = rt1.results()[0]
        for policy in ("run_to_block", "round_robin", "virtual_time"):
            rt = mp.Runtime(5, policy=policy, replay_log=rt1.comm_log)
            rt.run(wildcard_gather)
            assert rt.results()[0] == original, policy

    def test_replay_forces_specific_permutation(self):
        """Hand-craft a log delivering workers in reverse rank order."""
        rt1 = mp.Runtime(4)
        rt1.run(wildcard_gather)
        # Build a forced log: rank 0's i-th receive gets worker 3-i.
        forced = mp.CommLog()
        for i, src in enumerate((3, 2, 1)):
            forced.record_recv(0, i, mp.Envelope(src=src, dst=0, tag=1, seq=0))
        rt2 = mp.Runtime(4, replay_log=forced)
        rt2.run(wildcard_gather)
        assert [src for (_, src) in rt2.results()[0]] == [3, 2, 1]

    def test_replay_divergence_detected(self):
        """A receive that cannot match its recorded envelope fails fast."""
        log = mp.CommLog()
        log.record_recv(0, 0, mp.Envelope(src=2, dst=0, tag=9, seq=0))

        def prog(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=1)  # incompatible with recorded (2, 9)
            elif comm.rank == 1:
                comm.send("x", dest=0, tag=1)

        rt = mp.Runtime(3, replay_log=log)
        with pytest.raises(mp.ReplayDivergenceError):
            rt.run(prog)

    def test_replay_waitany_choice(self):
        def prog(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(source=s, tag=1) for s in (1, 2)]
                idx, _ = comm.waitany(reqs)
                comm.wait(reqs[1 - idx])
                return idx
            comm.send(comm.rank, dest=0, tag=1)
            return None

        forced = mp.CommLog()
        forced.record_waitany(0, 0, 1)
        rt = mp.Runtime(3, replay_log=forced)
        rt.run(prog)
        assert rt.results()[0] == 1

    def test_replay_past_recorded_history_is_free(self):
        """Receives beyond the log run unforced (legal continuation)."""
        log = mp.CommLog()  # empty: everything unforced

        def prog(comm):
            if comm.rank == 0:
                return comm.recv(source=mp.ANY_SOURCE)
            comm.send("w", dest=0)
            return None

        rt = mp.Runtime(2, replay_log=log)
        rt.run(prog)
        assert rt.results()[0] == "w"


class TestReplayDeterminismEndToEnd:
    def test_marker_values_reproduce(self):
        """Replay yields identical per-process final marker values."""

        def prog(comm):
            comm.proc.bump_marker()
            if comm.rank == 0:
                for _ in range(comm.size - 1):
                    comm.recv(source=mp.ANY_SOURCE, tag=1)
                    comm.proc.bump_marker()
            else:
                comm.send(comm.rank, dest=0, tag=1)
                comm.proc.bump_marker()

        rt1 = mp.Runtime(4, policy="random", seed=11)
        rt1.run(prog)
        markers1 = rt1.markers()

        rt2 = mp.Runtime(4, policy="random", seed=42, replay_log=rt1.comm_log)
        rt2.run(prog)
        assert rt2.markers() == markers1

    def test_clock_trajectories_reproduce_same_policy(self):
        rt1 = mp.Runtime(4)
        rt1.run(wildcard_gather)
        rt2 = mp.Runtime(4, replay_log=rt1.comm_log)
        rt2.run(wildcard_gather)
        assert rt1.clocks() == rt2.clocks()
