"""Nonblocking requests: isend/irecv/wait/test/waitall/waitany/cancel."""

from __future__ import annotations

import pytest

from repro import mp


class TestIsendIrecv:
    def test_isend_wait(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend([1, 2, 3], dest=1, tag=2)
                comm.wait(req)
                return None
            return comm.recv(source=0, tag=2)

        rt = mp.run_program(prog, 2)
        assert rt.results()[1] == [1, 2, 3]

    def test_irecv_posted_before_send(self):
        def prog(comm):
            if comm.rank == 1:
                req = comm.irecv(source=0, tag=9)
                comm.send("posted", dest=0, tag=1)
                return comm.wait(req)
            comm.recv(source=1, tag=1)
            comm.send("payload", dest=1, tag=9)
            return None

        rt = mp.run_program(prog, 2)
        assert rt.results()[1] == "payload"

    def test_irecv_status_through_wait(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("x" * 5, dest=1, tag=3)
                return None
            req = comm.irecv(source=mp.ANY_SOURCE, tag=mp.ANY_TAG)
            st = mp.Status()
            comm.wait(req, st)
            return (st.source, st.tag, st.count)

        rt = mp.run_program(prog, 2)
        assert rt.results()[1] == (0, 3, 5)

    def test_double_wait_raises(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, dest=1)
                return None
            req = comm.irecv(source=0)
            comm.wait(req)
            comm.wait(req)  # second wait on a finalized request

        with pytest.raises(mp.RequestError):
            mp.run_program(prog, 2)

    def test_test_polls_then_succeeds(self):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=0)  # wait for rank 1 to poll once
                comm.send("done", dest=1, tag=5)
                return None
            req = comm.irecv(source=0, tag=5)
            flag, _ = comm.test(req)
            assert flag is False
            comm.send(None, dest=0, tag=0)
            while True:
                flag, payload = comm.test(req)
                if flag:
                    return payload

        rt = mp.run_program(prog, 2)
        assert rt.results()[1] == "done"

    def test_issend_completes_on_match(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.issend("sync-nb", dest=1)
                comm.wait(req)
                return "sender-done"
            comm.compute(10.0)
            return comm.recv(source=0)

        rt = mp.run_program(prog, 2)
        assert rt.results() == ["sender-done", "sync-nb"]


class TestWaitallWaitany:
    def test_waitall_orders_payloads(self):
        def prog(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(source=s, tag=1) for s in (1, 2, 3)]
                return comm.waitall(reqs)
            comm.compute(float(comm.rank))
            comm.send(f"from-{comm.rank}", dest=0, tag=1)
            return None

        rt = mp.run_program(prog, 4)
        assert rt.results()[0] == ["from-1", "from-2", "from-3"]

    def test_waitall_statuses(self):
        def prog(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(source=s) for s in (1, 2)]
                statuses: list[mp.Status] = []
                comm.waitall(reqs, statuses)
                return [(s.source, s.count) for s in statuses]
            comm.send([0] * (comm.rank * 2), dest=0)
            return None

        rt = mp.run_program(prog, 3)
        assert rt.results()[0] == [(1, 2), (2, 4)]

    def test_waitany_returns_a_completed_index(self):
        def prog(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(source=s, tag=1) for s in (1, 2)]
                idx, payload = comm.waitany(reqs)
                rest = comm.wait(reqs[1 - idx])
                return sorted([payload, rest])
            comm.send(f"w{comm.rank}", dest=0, tag=1)
            return None

        rt = mp.run_program(prog, 3)
        assert rt.results()[0] == ["w1", "w2"]

    def test_waitany_choice_recorded(self):
        def prog(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(source=s, tag=1) for s in (1, 2)]
                comm.waitany(reqs)
                comm.wait(reqs[1])  # may already be done; rely on index 0 won
            else:
                comm.send(comm.rank, dest=0, tag=1)

        rt = mp.Runtime(3)
        rt.run(prog)
        assert (0, 0) in rt.comm_log.waitany_choices

    def test_waitany_empty_raises(self):
        def prog(comm):
            comm.waitany([])

        with pytest.raises(mp.RequestError):
            mp.run_program(prog, 1)


class TestCancel:
    def test_cancel_unmatched_irecv(self):
        def prog(comm):
            req = comm.irecv(source=0, tag=99)
            ok = comm.cancel(req)
            st = mp.Status()
            payload = comm.wait(req, st)
            return (ok, payload, st.cancelled)

        rt = mp.run_program(prog, 1)
        assert rt.results()[0] == (True, None, True)

    def test_cancel_matched_irecv_fails(self):
        def prog(comm):
            comm.send("already", dest=0, tag=1)
            req = comm.irecv(source=0, tag=1)  # matches instantly
            ok = comm.cancel(req)
            return (ok, comm.wait(req))

        rt = mp.run_program(prog, 1)
        assert rt.results()[0] == (False, "already")

    def test_cancel_send_request_fails(self):
        def prog(comm):
            req = comm.isend("x", dest=0, tag=1)
            ok = comm.cancel(req)
            comm.recv(source=0, tag=1)
            comm.wait(req)
            return ok

        rt = mp.run_program(prog, 1)
        assert rt.results()[0] is False
