"""Unit tests of the small substrate modules: clock, messages, status,
locations, envelope keys."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mp
from repro.mp.clock import CostModel, VirtualClock
from repro.mp.envelopeutil import envelope_key_str, parse_envelope_key
from repro.mp.locutil import caller_location, is_infrastructure_file
from repro.mp.message import Envelope, Message, copy_payload, payload_size


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            VirtualClock().advance(-1.0)

    def test_advance_to_only_forward(self):
        clock = VirtualClock(now=10.0)
        assert clock.advance_to(5.0) == 10.0  # never backwards
        assert clock.advance_to(15.0) == 15.0

    def test_checkpoint_history(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.checkpoint()
        clock.advance(2.0)
        clock.checkpoint()
        assert clock.history == (1.0, 3.0)


class TestCostModel:
    def test_transfer_time_components(self):
        cm = CostModel(latency=10.0, byte_cost=0.5)
        assert cm.transfer_time(0) == 10.0
        assert cm.transfer_time(4) == 12.0

    def test_defaults_positive(self):
        cm = CostModel()
        assert cm.latency > 0 and cm.send_overhead > 0
        assert cm.call_overhead < cm.send_overhead  # calls cheaper than msgs


class TestPayloads:
    def test_payload_size_kinds(self):
        assert payload_size(None) == 0
        assert payload_size(np.zeros((3, 4))) == 12
        assert payload_size("hello") == 5
        assert payload_size(b"ab") == 2
        assert payload_size([1, 2, 3]) == 3
        assert payload_size({"a": 1}) == 1
        assert payload_size(42) == 1
        assert payload_size(object()) == 1

    def test_copy_payload_arrays_independent(self):
        a = np.arange(3)
        c = copy_payload(a)
        a[0] = 99
        assert c[0] == 0

    def test_copy_payload_immutables_pass_through(self):
        s = "immutable"
        assert copy_payload(s) is s
        assert copy_payload(7) == 7
        t = (np.zeros(2), "x")
        ct = copy_payload(t)
        t[0][0] = 5.0
        assert ct[0][0] == 0.0  # tuple elements deep-copied

    def test_copy_payload_containers_deep(self):
        d = {"xs": [1, 2]}
        c = copy_payload(d)
        d["xs"].append(3)
        assert c["xs"] == [1, 2]


class TestEnvelopes:
    def test_matches_wildcards(self):
        msg = Message(envelope=Envelope(2, 0, 5, 0), payload=None)
        assert msg.matches(mp.ANY_SOURCE, mp.ANY_TAG)
        assert msg.matches(2, 5)
        assert not msg.matches(1, 5)
        assert not msg.matches(2, 6)

    def test_key_roundtrip(self):
        env = Envelope(src=3, dst=1, tag=42, seq=7)
        assert parse_envelope_key(envelope_key_str(env)) == env

    def test_msg_ids_unique(self):
        a = Message(envelope=Envelope(0, 1, 0, 0), payload=None)
        b = Message(envelope=Envelope(0, 1, 0, 1), payload=None)
        assert a.msg_id != b.msg_id


class TestLocUtil:
    def test_infrastructure_detection(self):
        import os

        assert is_infrastructure_file(
            os.path.join("x", "repro", "mp", "comm.py")
        )
        assert is_infrastructure_file(
            os.path.join("x", "repro", "debugger", "session.py")
        )
        assert not is_infrastructure_file(
            os.path.join("x", "repro", "apps", "strassen.py")
        )
        assert not is_infrastructure_file("user_code.py")

    def test_caller_location_points_here(self):
        loc = caller_location(skip=0)
        assert loc.filename.endswith("test_units.py")
        assert loc.function == "test_caller_location_points_here"


class TestStatus:
    def test_accessors(self):
        st = mp.Status(source=2, tag=3, count=4)
        assert st.get_source() == 2
        assert st.get_tag() == 3
        assert st.get_count() == 4
        assert st.is_cancelled() is False

    def test_set_from(self):
        a = mp.Status()
        a.set_from(mp.Status(source=1, tag=2, count=3, cancelled=True))
        assert (a.source, a.tag, a.count, a.cancelled) == (1, 2, 3, True)


class TestWaitInfoDisplay:
    def test_str(self):
        w = mp.WaitInfo(3, mp.WaitKind.RECV, 1, 9)
        text = str(w)
        assert "proc 3" in text and "recv" in text and "peer=1" in text
