"""The PMPI interposition layer: wrappers over communication calls."""

from __future__ import annotations

import pytest

from repro import mp


def pingpong(comm):
    if comm.rank == 0:
        comm.send("ping", dest=1)
        return comm.recv(source=1)
    got = comm.recv(source=0)
    comm.send(got + "-pong", dest=0)
    return None


class TestWrapperMechanics:
    def test_wrapper_sees_calls(self):
        events = []

        def wrap_send(next_call, comm, obj, dest, tag=0):
            events.append(("send", comm.rank, dest))
            return next_call(comm, obj, dest, tag)

        rt = mp.Runtime(2)
        rt.pmpi_layer.install("send", wrap_send)
        rt.run(pingpong)
        assert ("send", 0, 1) in events and ("send", 1, 0) in events

    def test_wrapper_reads_op_detail(self):
        details = []

        def wrap_recv(next_call, comm, *args, **kw):
            out = next_call(comm, *args, **kw)
            details.append(comm.last_op)
            return out

        rt = mp.Runtime(2)
        rt.pmpi_layer.install("recv", wrap_recv)
        rt.run(pingpong)
        assert all(d.op == "recv" for d in details)
        assert {(d.src, d.dst) for d in details} == {(0, 1), (1, 0)}
        assert all(d.t1 >= d.t0 for d in details)

    def test_wrapper_stacking_order(self):
        """Last-installed wrapper runs outermost, like link order."""
        calls = []

        def make(tagname):
            def wrapper(next_call, comm, *args, **kw):
                calls.append(f"{tagname}-in")
                out = next_call(comm, *args, **kw)
                calls.append(f"{tagname}-out")
                return out

            return wrapper

        rt = mp.Runtime(1)
        rt.pmpi_layer.install("compute", make("A"))
        rt.pmpi_layer.install("compute", make("B"))
        rt.run(lambda comm: comm.compute(1.0))
        assert calls == ["B-in", "A-in", "A-out", "B-out"]

    def test_uninstall(self):
        count = [0]

        def wrapper(next_call, comm, *args, **kw):
            count[0] += 1
            return next_call(comm, *args, **kw)

        layer = mp.PMPILayer()
        layer.install("send", wrapper)
        assert layer.wrapper_count("send") == 1
        assert layer.uninstall("send", wrapper) is True
        assert layer.uninstall("send", wrapper) is False
        assert layer.wrapper_count("send") == 0

    def test_unknown_op_rejected(self):
        layer = mp.PMPILayer()
        with pytest.raises(ValueError, match="unknown interposable"):
            layer.install("teleport", lambda *a: None)

    def test_clear_removes_everything(self):
        layer = mp.PMPILayer()
        layer.install("send", lambda n, c, *a, **k: n(c, *a, **k))
        layer.install("recv", lambda n, c, *a, **k: n(c, *a, **k))
        layer.clear()
        assert layer.wrapper_count("send") == 0
        assert layer.wrapper_count("recv") == 0

    def test_pmpi_name_shift_direct_call(self):
        """Calling pmpi_send directly bypasses the wrapper, as PMPI_Send
        bypasses a tool's MPI_Send."""
        seen = []

        def wrap_send(next_call, comm, *args, **kw):
            seen.append(args)
            return next_call(comm, *args, **kw)

        def prog(comm):
            if comm.rank == 0:
                comm.pmpi_send("direct", 1, 0)  # PMPI_ name: not wrapped
                comm.send("wrapped", dest=1, tag=0)  # MPI_ name: wrapped
            else:
                return [comm.recv(source=0), comm.recv(source=0)]

        rt = mp.Runtime(2)
        rt.pmpi_layer.install("send", wrap_send)
        rt.run(prog)
        assert rt.results()[1] == ["direct", "wrapped"]
        assert len(seen) == 1

    def test_collectives_route_constituents_through_wrappers(self):
        """A bcast's internal point-to-point traffic hits the send wrapper
        -- the property that makes collective traffic visible as message
        lines in the time-space diagram."""
        sends = []

        def wrap_send(next_call, comm, obj, dest, tag=0):
            sends.append((comm.rank, dest, tag))
            return next_call(comm, obj, dest, tag)

        rt = mp.Runtime(4)
        rt.pmpi_layer.install("send", wrap_send)
        rt.run(lambda comm: comm.bcast("data", root=0))
        assert len(sends) == 3
        assert all(tag == int(mp.CollectiveTag.BCAST) for (_, _, tag) in sends)

    def test_install_all(self):
        ops_seen = set()

        def factory(op):
            def wrapper(next_call, comm, *args, **kw):
                ops_seen.add(op)
                return next_call(comm, *args, **kw)

            return wrapper

        rt = mp.Runtime(2)
        rt.pmpi_layer.install_all(("send", "recv", "compute"), factory)

        def prog(comm):
            comm.compute(1.0)
            if comm.rank == 0:
                comm.send(1, dest=1)
            else:
                comm.recv(source=0)

        rt.run(prog)
        assert ops_seen == {"send", "recv", "compute"}
