"""Data watchpoints (the SIC-lineage extension: marker-organized
watchpoints over user locals)."""

from __future__ import annotations


from repro import mp
from repro.debugger import DebugSession


def accumulator(comm):
    total = 0
    for i in range(10):
        total += i
        comm.compute(1.0)
    return total


class TestPredicateWatchpoints:
    def test_stops_when_predicate_holds(self):
        session = DebugSession(accumulator, 1)
        session.breakpoints.watch_local("total", predicate=lambda v: v >= 10)
        summary = session.run()
        assert summary.outcome is mp.RunOutcome.STOPPED
        assert summary.reasons[0] == "breakpoint"
        assert int(session.frame_locals(0, 0)["total"]) >= 10
        # Observed at an instrumentation point, so it is the FIRST
        # marker at which the condition held.
        assert int(session.frame_locals(0, 0)["total"]) == 10
        session.breakpoints._watchpoints.clear()
        session.cont()
        assert session.results() == [45]
        session.shutdown()

    def test_rank_restriction(self):
        session = DebugSession(accumulator, 3)
        session.breakpoints.watch_local(
            "total", predicate=lambda v: v >= 3, ranks=[2]
        )
        summary = session.run()
        assert summary.states[2] == "stopped"
        assert summary.states[0] == "exited"
        session.breakpoints._watchpoints.clear()
        session.cont()
        session.shutdown()

    def test_missing_variable_never_fires(self):
        session = DebugSession(accumulator, 1)
        session.breakpoints.watch_local("no_such_var", predicate=lambda v: True)
        assert session.run().outcome is mp.RunOutcome.FINISHED
        session.shutdown()


class TestChangeWatchpoints:
    def test_stops_on_first_change(self):
        def prog(comm):
            mode = "init"
            comm.compute(1.0)
            comm.compute(1.0)
            mode = "active"
            comm.compute(1.0)
            return mode

        session = DebugSession(prog, 1)
        wp = session.breakpoints.watch_local("mode")
        summary = session.run()
        assert summary.outcome is mp.RunOutcome.STOPPED
        assert session.frame_locals(0, 0)["mode"] == "'active'"
        assert wp.hits == 1
        session.breakpoints.remove_watchpoint(wp.wp_id)
        session.cont()
        assert session.results() == ["active"]
        session.shutdown()

    def test_unchanged_value_never_fires(self):
        def prog(comm):
            constant = 7
            for _ in range(5):
                comm.compute(1.0)
            return constant

        session = DebugSession(prog, 1)
        session.breakpoints.watch_local("constant")
        assert session.run().outcome is mp.RunOutcome.FINISHED
        session.shutdown()

    def test_watchpoint_listing(self):
        session = DebugSession(accumulator, 1)
        wp = session.breakpoints.watch_local("total")
        assert session.breakpoints.watchpoints() == [wp]
        assert "watch total (change)" == wp.description
        assert session.breakpoints.remove_watchpoint(wp.wp_id)
        assert not session.breakpoints.remove_watchpoint(wp.wp_id)
        session.run()
        session.shutdown()

    def test_watchpoint_in_inner_frame(self):
        """The innermost user frame owning the name wins."""

        def prog(comm):
            level = "outer"

            def inner():
                level = "inner-0"
                for k in range(3):
                    level = f"inner-{k}"
                    comm.compute(1.0)

            inner()
            return level

        session = DebugSession(prog, 1)
        session.breakpoints.watch_local("level")
        summary = session.run()
        # First observation is inner-0 (at k=0's compute); the change to
        # inner-1 fires at k=1's compute.
        assert summary.outcome is mp.RunOutcome.STOPPED
        assert session.frame_locals(0, 0)["level"] == "'inner-1'"
        session.breakpoints._watchpoints.clear()
        session.cont()
        session.shutdown()
