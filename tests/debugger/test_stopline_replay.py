"""Stoplines, controlled replay, and undo -- the paper's §4 features."""

from __future__ import annotations

import pytest

from repro import mp
from repro.apps import strassen as st
from repro.debugger import (
    DebugSession,
    StoplinePlacement,
    compute_stopline,
    replay_matches_markers,
    verify_stopline_consistency,
    vertical_stopline_at_time,
)
from tests.conftest import traced_run


@pytest.fixture(scope="module")
def strassen_trace():
    cfg = st.StrassenConfig(n=8, nprocs=8)
    _, tr = traced_run(st.strassen_program(cfg), 8)
    return tr


class TestStoplineComputation:
    def test_vertical_at_time(self, strassen_trace):
        t_lo, t_hi = strassen_trace.span
        mid = (t_lo + t_hi) / 2
        sl = vertical_stopline_at_time(strassen_trace, mid)
        assert sl.time == mid
        assert len(sl.thresholds) >= 1
        assert verify_stopline_consistency(strassen_trace, sl)

    def test_vertical_anchored_on_event(self, strassen_trace):
        # Anchor on the master's first result receive.
        anchor = next(
            r for r in strassen_trace.by_proc(0)
            if r.is_recv and r.tag == st.TAG_RESULT
        )
        sl = compute_stopline(strassen_trace, anchor.index)
        assert sl.anchor is anchor
        assert sl.thresholds[0] == anchor.marker
        assert verify_stopline_consistency(strassen_trace, sl)

    def test_vertical_slices_are_consistent_everywhere(self, strassen_trace):
        """Property over many times: a vertical slice never cuts a
        message backwards (§4.1's causality argument)."""
        t_lo, t_hi = strassen_trace.span
        for k in range(12):
            t = t_lo + (t_hi - t_lo) * k / 11
            sl = vertical_stopline_at_time(strassen_trace, t)
            assert verify_stopline_consistency(strassen_trace, sl), t

    def test_frontier_placements(self, strassen_trace):
        anchor = next(
            r for r in strassen_trace.by_proc(3) if r.is_recv
        )
        past = compute_stopline(
            strassen_trace, anchor.index, StoplinePlacement.PAST_FRONTIER
        )
        future = compute_stopline(
            strassen_trace, anchor.index, StoplinePlacement.FUTURE_FRONTIER
        )
        assert past.thresholds[anchor.proc] == anchor.marker
        assert future.thresholds[anchor.proc] == anchor.marker
        # Past thresholds never exceed future thresholds where both exist.
        for r in past.thresholds:
            if r in future.thresholds:
                assert past.thresholds[r] <= future.thresholds[r]

    def test_describe(self, strassen_trace):
        sl = vertical_stopline_at_time(strassen_trace, 1.0)
        assert "stopline (vertical)" in sl.describe()


class TestReplayToStopline:
    def test_replay_stops_at_marker_vector(self):
        cfg = st.StrassenConfig(n=8, nprocs=4)
        session = DebugSession(st.strassen_program(cfg), 4)
        session.run()
        tr = session.trace()
        anchor = next(r for r in tr.by_proc(2) if r.is_recv)
        sl = session.set_stopline(anchor.index)
        summary = session.replay()
        assert summary.outcome is mp.RunOutcome.STOPPED
        for rank in sl.thresholds:
            proc = session.runtime.procs[rank]
            if proc.state is mp.ProcState.STOPPED:
                assert proc.marker == sl.thresholds[rank]
        assert replay_matches_markers(session._execution, sl.thresholds) or any(
            p.state is mp.ProcState.BLOCKED for p in session.runtime.procs
        )
        session.shutdown()

    def test_replayed_prefix_identical(self):
        """The replayed history up to the stopline equals the original
        prefix (identical event causality, §4.2)."""
        cfg = st.StrassenConfig(n=8, nprocs=4)
        session = DebugSession(st.strassen_program(cfg), 4)
        session.run()
        original = session.trace()
        anchor = next(r for r in original.by_proc(0) if r.is_recv)
        session.set_stopline(anchor.index)
        session.replay()
        replayed = session.trace()

        def fingerprint(tr, rank, upto):
            return [
                (r.kind, r.marker, r.src, r.dst, r.tag, r.seq)
                for r in tr.by_proc(rank)
                if r.marker < upto
            ]

        for rank in range(4):
            upto = session.current_stopline.thresholds.get(rank)
            if upto is None:
                continue
            assert fingerprint(replayed, rank, upto) == fingerprint(
                original, rank, upto
            ), f"rank {rank} prefix diverged"
        session.shutdown()

    def test_continue_after_replay_completes(self):
        cfg = st.StrassenConfig(n=8, nprocs=4)
        session = DebugSession(st.strassen_program(cfg), 4)
        session.run()
        anchor = next(r for r in session.trace().by_proc(1) if r.is_recv)
        session.set_stopline(anchor.index)
        session.replay()
        session.clear_thresholds()
        final = session.cont()
        assert final.outcome is mp.RunOutcome.FINISHED
        import numpy as np

        np.testing.assert_allclose(
            session.results()[0], st.reference_product(cfg), atol=1e-10
        )
        session.shutdown()

    def test_replay_without_stopline_rejected(self):
        session = DebugSession(lambda comm: None, 1)
        session.run()
        with pytest.raises(ValueError, match="no stopline"):
            session.replay()
        session.shutdown()


class TestUndo:
    @staticmethod
    def _stepper(n):
        def prog(comm):
            for i in range(n):
                comm.compute(1.0)  # one marker per compute (wrapper bump)
            return comm.rank

        return prog

    def test_undo_restores_previous_markers(self):
        session = DebugSession(self._stepper(20), 2)
        session.set_threshold(0, 5)
        session.set_threshold(1, 5)
        session.run()
        first = session.markers()
        session.set_threshold(0, 10)
        session.set_threshold(1, 10)
        session.cont()
        assert session.markers().as_dict() == {0: 10, 1: 10}
        summary = session.undo()
        assert summary.outcome is mp.RunOutcome.STOPPED
        assert session.markers() == first
        session.shutdown()

    def test_undo_after_steps(self):
        """Undo of a single step returns exactly one marker back."""
        session = DebugSession(self._stepper(10), 1)
        session.set_threshold(0, 3)
        session.run()
        session.set_threshold(0, None)
        session.step(0)
        assert session.markers()[0] == 4
        session.undo()
        assert session.markers()[0] == 3
        session.shutdown()

    def test_repeated_undo_walks_backwards(self):
        session = DebugSession(self._stepper(10), 1)
        session.set_threshold(0, 2)
        session.run()
        session.set_threshold(0, None)
        session.step(0)
        session.step(0)
        assert session.markers()[0] == 4
        session.undo()
        assert session.markers()[0] == 3
        session.undo()
        assert session.markers()[0] == 2
        session.shutdown()

    def test_undo_beyond_history_rejected(self):
        session = DebugSession(self._stepper(3), 1)
        session.run()
        with pytest.raises(ValueError, match="cannot undo"):
            session.undo(5)
        session.shutdown()

    def test_undo_with_wildcard_traffic_reproduces_matching(self):
        """Undo across nondeterministic receives: forced matching keeps
        the replayed history identical (§4.2)."""
        from repro.apps import master_worker_program

        session = DebugSession(master_worker_program(n_tasks=8), 4)
        session.run()
        log_before = dict(session.master_log.recv_matches)
        # Undo to the very start is impossible (only one stop), so replay
        # to a mid-point threshold instead and compare the master log.
        session.replay(thresholds={0: 5})
        session.clear_thresholds()
        session.cont()
        assert session.master_log.recv_matches == log_before
        session.shutdown()
