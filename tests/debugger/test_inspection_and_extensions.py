"""Stack/locals inspection, truncation, and AIMS call-site constructs."""

from __future__ import annotations

import pytest

from repro import mp
from repro.debugger import CommandInterpreter, DebugSession
from repro.instrument import AimsMonitor, load_instrumented_module
from repro.trace import EventKind, TraceRecorder


def layered_prog(comm):
    state = {"rank": comm.rank}

    def inner(x):
        doubled = x * 2
        comm.compute(1.0)  # one marker per iteration (wrapper bump)
        return doubled

    total = 0
    for i in range(6):
        total += inner(i)
    state["total"] = total
    return state


class TestStackInspection:
    def test_stack_of_stopped_process(self):
        session = DebugSession(layered_prog, 2)
        session.set_threshold(0, 3)
        session.run()
        frames = session.stack(0)
        names = [f.split(" at ")[0] for f in frames]
        assert names[-1] == "inner"  # innermost user frame last
        assert "layered_prog" in names
        session.clear_thresholds()
        session.cont()
        session.shutdown()

    def test_locals_of_frames(self):
        session = DebugSession(layered_prog, 1)
        session.set_threshold(0, 4)
        session.run()
        inner_locals = session.frame_locals(0, 0)
        assert inner_locals["x"] == "3"
        assert inner_locals["doubled"] == "6"
        outer_locals = session.frame_locals(0, 1)
        assert "total" in outer_locals and "state" in outer_locals
        session.clear_thresholds()
        session.cont()
        session.shutdown()

    def test_stack_of_blocked_process(self):
        def prog(comm):
            if comm.rank == 0:
                pending_value = 41
                comm.recv(source=1, tag=9)
                return pending_value

        session = DebugSession(prog, 2)
        session.run()  # deadlock-ish: rank 0 blocked forever
        frames = session.stack(0)
        assert any("prog" in f for f in frames)
        assert session.frame_locals(0, 0)["pending_value"] == "41"
        session.shutdown()

    def test_stack_of_running_process_rejected(self):
        session = DebugSession(layered_prog, 1)
        session.run()  # finishes
        with pytest.raises(ValueError, match="exited"):
            session.stack(0)
        session.shutdown()

    def test_locals_depth_out_of_range(self):
        session = DebugSession(layered_prog, 1)
        session.set_threshold(0, 1)
        session.run()
        with pytest.raises(ValueError, match="out of range"):
            session.frame_locals(0, depth=99)
        session.clear_thresholds()
        session.cont()
        session.shutdown()

    def test_backtrace_and_locals_commands(self):
        session = DebugSession(layered_prog, 1)
        interp = CommandInterpreter(session)
        interp.execute("threshold 0 2")
        interp.execute("run")
        bt = interp.execute("backtrace 0")
        assert "#0" in bt and "inner" in bt
        lv = interp.execute("locals 0")
        assert "x = 1" in lv
        assert "exited" in interp.execute("bt 0") or "inner" in interp.execute("bt 0")
        interp.execute("threshold 0 off")
        interp.execute("continue")
        session.shutdown()


class TestTruncation:
    def test_recv_max_count_ok(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send([1, 2, 3], dest=1)
                return None
            return comm.recv(source=0, max_count=3)

        rt = mp.run_program(prog, 2)
        assert rt.results()[1] == [1, 2, 3]

    def test_recv_truncation_raises(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send([1, 2, 3, 4], dest=1)
                return None
            comm.recv(source=0, max_count=2)

        with pytest.raises(mp.TruncationError, match="holds 2"):
            mp.run_program(prog, 2)

    def test_truncation_status_still_filled(self):
        got = {}

        def prog(comm):
            if comm.rank == 0:
                comm.send("abcdef", dest=1, tag=3)
                return None
            st = mp.Status()
            try:
                comm.recv(source=0, max_count=2, status=st)
            except mp.TruncationError:
                got["status"] = (st.source, st.tag, st.count)
                return "truncated"

        rt = mp.run_program(prog, 2)
        assert rt.results()[1] == "truncated"
        assert got["status"] == (0, 3, 6)


class TestAimsCallConstruct:
    SRC = '''
def helper(x):
    return x + 1

def work(n):
    total = 0
    for i in range(n):
        total += helper(i)
    return total
'''

    def _run(self, constructs):
        rt = mp.Runtime(1)
        rec = TraceRecorder(1)
        mon = AimsMonitor(rt, rec)
        module = load_instrumented_module(self.SRC, mon, constructs=constructs)
        rt.run(lambda comm: module.work(4))
        return rt, mon, rec.snapshot()

    def test_call_sites_recorded(self):
        rt, mon, tr = self._run(("function", "call"))
        statements = tr.of_kind(EventKind.STATEMENT)
        # 1 range(n) + 4 helper(i) calls.
        assert len(statements) == 5
        names = {mon.table[r.construct_id].name for r in statements}
        assert names == {"range", "helper"}
        assert rt.results() == [1 + 2 + 3 + 4]  # semantics preserved

    def test_monitor_calls_not_reinstrumented(self):
        """__aims__.enter/exit/call_event are never wrapped themselves."""
        from repro.instrument import instrumented_text

        text = instrumented_text(self.SRC, constructs=("function", "call"))
        assert "call_event" in text
        # No call_event wrapping a call_event or enter/exit.
        assert "__aims__.call_event(0, __aims__." not in text
        for bad in ("call_event(", "enter(", "exit("):
            assert f"__aims__.call_event(0, __aims__.{bad}" not in text

    def test_finer_constructs_bigger_traces(self):
        """§2.1: resolution spectrum function < +loop < +call."""
        sizes = {}
        for constructs in (("function",), ("function", "loop"),
                           ("function", "loop", "call")):
            _, _, tr = self._run(constructs)
            sizes[constructs] = len(tr)
        a, b, c = sizes.values()
        assert a < b < c
