"""The profile/critical/races commands in the interpreter."""

from __future__ import annotations

from repro.apps import master_worker_program
from repro.apps import strassen as st
from repro.debugger import CommandInterpreter, DebugSession


class TestAnalysisCommands:
    def test_profile_command(self):
        cfg = st.StrassenConfig(n=8, nprocs=4)
        session = DebugSession(st.strassen_program(cfg), 4)
        interp = CommandInterpreter(session)
        interp.execute("run")
        out = interp.execute("profile")
        assert "recv-wait" in out
        assert "message counts" in out
        assert "total: 21 messages" in out
        session.shutdown()

    def test_critical_command(self):
        cfg = st.StrassenConfig(n=8, nprocs=4)
        session = DebugSession(st.strassen_program(cfg), 4)
        interp = CommandInterpreter(session)
        interp.execute("run")
        out = interp.execute("critical 6")
        assert "critical path" in out and "message hops" in out
        session.shutdown()

    def test_races_command(self):
        session = DebugSession(master_worker_program(n_tasks=5), 3)
        interp = CommandInterpreter(session)
        interp.execute("run")
        out = interp.execute("races")
        assert "race at p0" in out
        session.shutdown()

    def test_races_command_clean_program(self):
        cfg = st.StrassenConfig(n=8, nprocs=2)
        session = DebugSession(st.strassen_program(cfg), 2)
        interp = CommandInterpreter(session)
        interp.execute("run")
        assert interp.execute("races") == "no message races detected"
        session.shutdown()

    def test_help_lists_new_commands(self):
        session = DebugSession(lambda comm: None, 1)
        interp = CommandInterpreter(session)
        help_text = interp.execute("help")
        for cmd in ("profile", "critical", "races", "backtrace", "locals"):
            assert cmd in help_text
        interp.execute("run")
        session.shutdown()
