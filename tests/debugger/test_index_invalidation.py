"""Generation discipline of the session-held HistoryIndex.

An index describes exactly one execution.  ``DebugSession.replay()`` /
``undo()`` discard the old execution, so the index built before the
replay must refuse every post-replay query (StaleIndexError), and the
session must hand out a fresh index bound to the new generation.
"""

from __future__ import annotations

import pytest

from repro.analysis import StaleIndexError
from repro.apps.ring import ring_program
from repro.debugger import DebugSession
from repro.debugger.commands import CommandInterpreter


@pytest.fixture()
def session():
    s = DebugSession(ring_program(rounds=2), 3)
    yield s
    s.shutdown()


def test_index_tracks_live_stream(session):
    index = session.index()
    session.run()
    trace = session.trace()
    assert len(index) == len(trace)
    assert [(p.send.index, p.recv.index) for p in index.message_pairs()] == [
        (p.send.index, p.recv.index) for p in trace.message_pairs()
    ]


def test_replay_invalidates_old_index(session):
    session.run()
    old = session.index()
    old.message_pairs()  # force derivation on the old generation
    recv = next(r for r in session.trace() if r.is_recv)
    session.set_stopline(recv.index)
    session.replay()

    # pre-replay index must not serve post-replay queries
    assert old.stale
    with pytest.raises(StaleIndexError):
        old.message_pairs()
    with pytest.raises(StaleIndexError):
        _ = old.order

    new = session.index()
    assert new is not old
    assert new.generation == session.generation
    assert not new.stale
    # the new index tracks the replayed (truncated) execution
    assert len(new) == len(session.trace())


def test_undo_rebinds_index_per_generation(session):
    session.run()
    gen0 = session.index()
    recv = next(r for r in session.trace() if r.is_recv)
    session.set_stopline(recv.index)
    session.replay()
    gen1 = session.index()
    session.undo()  # replays again: generation 2
    gen2 = session.index()
    assert gen0.stale and gen1.stale and not gen2.stale
    assert len({gen0.generation, gen1.generation, gen2.generation}) == 3
    assert gen2.generation == session.generation


def test_session_analyses_share_one_index(session):
    """matching + deadlock + stopline + stats all ride the same index:
    one matching build, one clock build for the whole session."""
    session.run()
    recv = next(r for r in session.trace() if r.is_recv)
    session.set_stopline(recv.index)
    session.matching_report()
    session.deadlock_report()
    stats = session.index().stats()
    assert stats.matching_builds <= 1
    assert stats.clock_builds <= 1
    assert stats.generation == session.generation


def test_stats_command(session):
    interp = CommandInterpreter(session)
    interp.execute("run")
    interp.execute("matching")
    interp.execute("critical")
    out = interp.execute("stats")
    assert "history index stats" in out
    assert "1 build(s)" in out
    assert "help" in interp.execute("help") or "stats" in interp.execute("help")


def test_stats_command_reports_paged_index(session, tmp_path):
    """With an out-of-core index attached, ``stats`` folds in its
    cache/readahead counters next to the history-index report."""
    from repro.analysis.paged import OutOfCoreIndex
    from repro.trace import TraceFileReader, save_trace

    interp = CommandInterpreter(session)
    interp.execute("run")
    assert "paged index" not in interp.execute("stats")

    path = tmp_path / "run.trace"
    save_trace(session.trace(), path)
    paged = OutOfCoreIndex(TraceFileReader(path), cache_blocks=4)
    session.attach_paged_index(paged)
    lo, hi = paged.span
    paged.seek_window(lo, hi)
    out = interp.execute("stats")
    assert "history index stats" in out
    assert "paged index: 1 window query" in out
    assert "demand loads" in out
    paged.close()
