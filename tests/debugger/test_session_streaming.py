"""The debug session's live trace stream (streaming pipeline surface)."""

from __future__ import annotations

import pytest

from repro.apps.ring import ring_program
from repro.debugger import DebugSession
from repro.trace import MemorySink, RingBufferSink


@pytest.fixture()
def session():
    s = DebugSession(ring_program(rounds=2), 3)
    yield s
    s.shutdown()


def test_subscriber_sees_full_history(session):
    sink = MemorySink()
    session.subscribe(sink)
    session.run()
    trace = session.trace()
    assert [r.index for r in sink.records] == [r.index for r in trace]


def test_callback_observes_live(session):
    seen = []
    session.add_trace_callback(lambda r: seen.append(r.kind))
    session.run()
    assert len(seen) == len(session.trace())


def test_subscription_survives_replay(session):
    sink = MemorySink()
    session.subscribe(sink)
    session.run()
    n_first = len(sink)
    assert n_first > 0
    recv = next(r for r in session.trace() if r.is_recv)
    session.set_stopline(recv.index)
    session.replay()
    # the sink observed the replay generation's records too
    assert len(sink) > n_first
    gen2 = sink.records[n_first:]
    assert [r.index for r in gen2] == [r.index for r in session.trace()]


def test_unsubscribe_stops_stream(session):
    sink = MemorySink()
    session.subscribe(sink)
    session.unsubscribe(sink)
    session.run()
    assert len(sink) == 0


def test_live_graph_matches_batch(session):
    graph = session.live_graph()
    session.run()
    from repro.graphs.tracegraph import TraceGraph

    batch = TraceGraph.from_trace(session.trace())
    assert graph.events_consumed == batch.events_consumed
    assert sorted(map(str, graph.nodes)) == sorted(map(str, batch.nodes))


def test_ring_sink_bounds_session_memory(session):
    ring = RingBufferSink(capacity=5)
    session.subscribe(ring)
    session.run()
    assert len(ring) == 5
    assert ring.evicted == len(session.trace()) - 5
