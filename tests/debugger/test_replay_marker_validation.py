"""``replay_matches_markers`` input validation (explorer bugfix)."""

from __future__ import annotations

import pytest

from repro.apps import strassen as st
from repro.debugger import DebugSession, replay_matches_markers
from repro.trace.markers import MarkerVector


@pytest.fixture(scope="module")
def finished_session():
    cfg = st.StrassenConfig(n=8, nprocs=4)
    session = DebugSession(st.strassen_program(cfg), 4)
    session.run()
    yield session
    session.shutdown()


class TestReplayMatchesMarkers:
    def test_out_of_range_rank_rejected(self, finished_session):
        """A threshold naming a nonexistent rank used to raise a bare
        IndexError from ``procs[rank]``; it is a caller error and must
        say so."""
        with pytest.raises(ValueError, match=r"rank 99.*4 rank\(s\).*0\.\.3"):
            replay_matches_markers(
                finished_session._execution, MarkerVector({99: 1})
            )

    def test_negative_rank_rejected(self, finished_session):
        """Negative ranks would silently index from the end of the
        process list -- also a caller error."""
        with pytest.raises(ValueError, match="rank -1"):
            replay_matches_markers(
                finished_session._execution, MarkerVector({-1: 1})
            )

    def test_valid_ranks_still_compare(self, finished_session):
        procs = finished_session.runtime.procs
        exact = MarkerVector({p.rank: p.marker for p in procs})
        assert replay_matches_markers(finished_session._execution, exact)
        off = MarkerVector({0: procs[0].marker + 1})
        assert not replay_matches_markers(finished_session._execution, off)

    def test_empty_vector_trivially_matches(self, finished_session):
        assert replay_matches_markers(finished_session._execution, MarkerVector())
