"""Session mechanics, breakpoints, checkpoints, commands -- and the
paper's worked Figure 5-7 debugging scenario end to end."""

from __future__ import annotations

import pytest

from repro import mp
from repro.apps import strassen as st
from repro.debugger import (
    CommandError,
    CommandInterpreter,
    DebugSession,
    LogBacklog,
)
from repro.trace import MarkerVector


def stepper(n):
    def prog(comm):
        for _ in range(n):
            comm.compute(1.0)
        return comm.rank

    return prog


class TestBreakpoints:
    def test_function_breakpoint_via_uinst(self):
        from repro.apps import fibonacci as fibmod

        session = DebugSession(
            fibmod.fib_program(8), 1, uinst_functions=[fibmod.fib]
        )
        bp = session.breakpoints.break_at_function("fib")
        summary = session.run()
        assert summary.outcome is mp.RunOutcome.STOPPED
        assert summary.reasons[0] == "breakpoint"
        assert bp.hits == 1
        assert session.runtime.procs[0].current_location.function == "fib"
        session.breakpoints.remove(bp.bp_id)
        assert session.cont().outcome is mp.RunOutcome.FINISHED
        session.shutdown()

    def test_ignore_count(self):
        from repro.apps import fibonacci as fibmod

        session = DebugSession(
            fibmod.fib_program(8), 1, uinst_functions=[fibmod.fib]
        )
        bp = session.breakpoints.break_at_function("fib", ignore_count=4)
        session.run()
        assert session.markers()[0] == 5  # stopped at the 5th fib entry
        assert bp.hits == 5
        session.breakpoints.clear()
        session.cont()
        session.shutdown()

    def test_rank_restricted_breakpoint(self):
        def prog(comm):
            comm.compute(1.0)
            comm.compute(1.0)

        session = DebugSession(prog, 3)
        session.breakpoints.break_when(
            lambda proc, loc: True, description="always", ranks=[1]
        )
        summary = session.run()
        assert summary.states[1] == "stopped"
        assert summary.states[0] == "exited"
        session.breakpoints.clear()
        session.cont()
        session.shutdown()

    def test_line_breakpoint(self):
        session = DebugSession(stepper(5), 1)
        # The compute() call sites inside stepper: find the line from a
        # first uninstrumented probe run is overkill; break on this file.
        bp = session.breakpoints.break_at_line("test_session_and_figure7.py", 0)
        assert len(session.breakpoints) == 1
        assert session.breakpoints.get(bp.bp_id) is bp
        session.breakpoints.remove(bp.bp_id)
        session.run()
        session.shutdown()


class TestCheckpointBacklog:
    def test_logarithmic_thinning(self):
        backlog = LogBacklog(base=4)
        for i in range(64):
            backlog.add(MarkerVector({0: i + 1}))
        assert len(backlog) < 30  # far fewer than 64 retained
        assert backlog.latest().markers[0] == 64
        # Recent checkpoints are dense.
        seqs = [cp.seq for cp in backlog.checkpoints()]
        assert {60, 61, 62, 63} <= set(seqs)

    def test_nearest_before(self):
        backlog = LogBacklog(base=2)
        for i in (2, 5, 9):
            backlog.add(MarkerVector({0: i, 1: i}))
        cp = backlog.nearest_before(MarkerVector({0: 6, 1: 7}))
        assert cp is not None and cp.markers[0] == 5
        assert backlog.nearest_before(MarkerVector({0: 1, 1: 1})) is None

    def test_base_validation(self):
        with pytest.raises(ValueError):
            LogBacklog(base=0)

    def test_session_uses_checkpoints_on_replay(self):
        # base=4 keeps all four stop checkpoints (no thinning yet), so
        # the replay to 12 is guaranteed to gate on the one at 10.
        session = DebugSession(stepper(30), 1, checkpoint_base=4)
        for m in (5, 10, 15, 20):
            session.set_threshold(0, m)
            session.run() if m == 5 else session.cont()
        # Replay back to 12: the checkpoint at 10 should gate recording.
        session.replay(thresholds={0: 12})
        assert session.markers()[0] == 12
        tr = session.trace()
        # Fast-skip: records before marker 10 were suppressed.
        assert all(r.marker >= 10 for r in tr.by_proc(0))
        session.shutdown()


class TestCommandInterpreter:
    def test_basic_flow(self):
        session = DebugSession(stepper(6), 2)
        interp = CommandInterpreter(session)
        interp.execute("threshold 0 3")
        out = interp.execute("run")
        assert "stopped" in out
        assert "p0: stopped marker=3" in interp.execute("states")
        interp.execute("threshold 0 off")
        out = interp.execute("continue")
        assert "finished" in out
        session.shutdown()

    def test_stopline_replay_undo_commands(self):
        session = DebugSession(stepper(8), 1)
        interp = CommandInterpreter(session)
        interp.execute("run")
        out = interp.execute("stopline 3")
        assert "stopline (vertical)" in out
        assert "stopped" in interp.execute("replay")
        interp.execute("threshold 0 6")
        interp.execute("continue")
        assert session.markers()[0] == 6
        interp.execute("undo")
        assert session.markers()[0] < 6
        session.shutdown()

    def test_trace_and_reports(self):
        session = DebugSession(stepper(3), 1)
        interp = CommandInterpreter(session)
        interp.execute("run")
        assert "compute" in interp.execute("trace 5")
        assert "no anomalies" in interp.execute("matching")
        assert "no blocked processes" in interp.execute("deadlock")
        assert "usage" not in interp.execute("help")
        session.shutdown()

    def test_errors(self):
        session = DebugSession(stepper(2), 1)
        interp = CommandInterpreter(session)
        with pytest.raises(CommandError, match="unknown command"):
            interp.execute("teleport 3")
        with pytest.raises(CommandError, match="usage: step"):
            interp.execute("step")
        with pytest.raises(CommandError, match="expected a rank"):
            interp.execute("step zero")
        assert interp.execute("") == ""
        session.run()
        session.shutdown()


class TestFigure567Scenario:
    """The paper's worked example, end to end:

    1. the buggy Strassen run deadlocks (Figure 5);
    2. trace analysis shows worker 7 received one message where workers
       1-6 received two, and finds the missed message (Figure 6);
    3. a stopline before the first operand send, replay, and stepping
       lead to the send with the wrong destination (Figure 7).
    """

    def test_full_scenario(self):
        cfg = st.StrassenConfig(n=8, nprocs=8, buggy=True)
        session = DebugSession(st.strassen_program(cfg), 8)

        # --- 1. run; observe the Figure 5 deadlock -----------------------
        summary = session.run()
        assert summary.outcome is mp.RunOutcome.DEADLOCK
        dl = session.deadlock_report()
        assert dl.cycles == [[0, 7]]  # 0 and 7 wait on each other

        # --- 2. the Figure 6 diagnosis -----------------------------------
        tr = session.trace()
        counts = tr.recv_counts()
        assert all(counts[w] == 2 for w in range(1, 7))
        assert counts[7] == 1  # the missing tick
        report = session.matching_report()
        assert len(report.missed) == 1
        assert report.missed[0].starving.rank == 7

        # --- 3. stopline before the first operand send, replay ----------
        first_send = next(r for r in tr.by_proc(0) if r.is_send)
        stopline = session.set_stopline(first_send.index)
        summary = session.replay()
        assert summary.outcome is mp.RunOutcome.STOPPED
        assert session.markers()[0] == stopline.thresholds[0]
        # Workers are stopped/blocked before receiving anything.
        assert all(counts == 0 for counts in session.trace().recv_counts().values())

        # --- 4. step process 0 through matr_send to the bad send --------
        session.clear_thresholds()
        bad_send = None
        for _ in range(10):
            session.step(0)
            tr_now = session.trace()
            sends = [r for r in tr_now.by_proc(0) if r.is_send]
            if len(sends) >= 2:
                bad_send = sends[1]  # the second operand send of jres=0
                break
        assert bad_send is not None
        # The user's discovery: the second operand went to rank 0, not 1.
        assert bad_send.tag == st.TAG_OPERAND_B
        assert bad_send.dst == 0  # should have been 1 + (0 % 7) == 1
        assert "strassen.py" in bad_send.location.filename
        session.shutdown()
