"""The ``python -m repro.debugger`` command-line front end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

PROGRAM = '''
def main(comm):
    token = 0
    if comm.rank == 0:
        comm.send(41, dest=1, tag=3)
        token = comm.recv(source=1, tag=4)
    elif comm.rank == 1:
        token = comm.recv(source=0, tag=3) + 1
        comm.send(token, dest=0, tag=4)
    comm.compute(2.0)
    return token

def other_entry(comm):
    return comm.rank * 10
'''

DEADLOCKER = '''
def main(comm):
    comm.recv(source=(comm.rank + 1) % comm.size, tag=9)
'''


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.py"
    path.write_text(PROGRAM)
    return path


def run_cli(*args, commands=None, timeout=120):
    argv = [sys.executable, "-m", "repro.debugger", *map(str, args)]
    for cmd in commands or []:
        argv += ["-c", cmd]
    return subprocess.run(
        argv, capture_output=True, text=True, timeout=timeout,
        cwd=Path(__file__).resolve().parents[2],
    )


class TestCli:
    def test_run_to_completion(self, program_file):
        out = run_cli(program_file, "--nprocs", "2",
                      commands=["run", "states", "trace 4"])
        assert out.returncode == 0, out.stderr
        assert "finished" in out.stdout
        assert "p0: exited" in out.stdout
        assert "compute" in out.stdout

    def test_threshold_and_continue(self, program_file):
        out = run_cli(
            program_file, "--nprocs", "2",
            commands=["threshold 0 1", "run", "where 0",
                      "threshold 0 off", "continue"],
        )
        assert "stopped" in out.stdout
        assert "marker=1" in out.stdout
        assert "finished" in out.stdout

    def test_stopline_replay_flow(self, program_file):
        out = run_cli(
            program_file, "--nprocs", "2",
            commands=["run", "stopline 1", "replay", "states"],
        )
        assert "stopline (vertical)" in out.stdout
        assert out.stdout.count("(p2d2)") == 4  # echoed commands

    def test_alternate_entry(self, program_file):
        out = run_cli(program_file, "--nprocs", "3",
                      "--entry", "other_entry", commands=["run"])
        assert "finished" in out.stdout

    def test_missing_entry_errors(self, program_file):
        out = run_cli(program_file, "--entry", "nope", commands=["run"])
        assert out.returncode != 0
        assert "does not define a callable" in out.stderr

    def test_deadlock_report_via_cli(self, tmp_path):
        path = tmp_path / "dead.py"
        path.write_text(DEADLOCKER)
        out = run_cli(path, "--nprocs", "3", commands=["run", "deadlock"])
        assert "deadlock" in out.stdout
        assert "cycle" in out.stdout

    def test_bad_command_keeps_repl_alive(self, program_file):
        out = run_cli(program_file, commands=["teleport", "run"])
        assert "error: unknown command" in out.stdout
        assert "finished" in out.stdout

    def test_stdin_repl(self, program_file):
        argv = [sys.executable, "-m", "repro.debugger", str(program_file),
                "--nprocs", "2"]
        out = subprocess.run(
            argv, input="run\nstates\nquit\n", capture_output=True,
            text=True, timeout=120,
            cwd=Path(__file__).resolve().parents[2],
        )
        assert out.returncode == 0, out.stderr
        assert "finished" in out.stdout

    def test_uinst_flag_instruments_program_functions(self, tmp_path):
        path = tmp_path / "fibby.py"
        path.write_text(
            "def helper(x):\n    return x + 1\n\n"
            "def main(comm):\n    return helper(comm.rank)\n"
        )
        out = run_cli(path, "--nprocs", "1", "--uinst",
                      commands=["run", "trace 8"])
        assert "func_entry" in out.stdout
