"""Viewport math, time-space diagrams, SVG, and the animated view."""

from __future__ import annotations

import pytest

from repro.apps import strassen as st
from repro.debugger import vertical_stopline_at_time
from repro.viz import (
    AnimatedView,
    Viewport,
    build_diagram,
    render_ascii,
    render_svg,
    save_svg,
)
from tests.conftest import traced_run


@pytest.fixture(scope="module")
def strassen_diagram():
    cfg = st.StrassenConfig(n=8, nprocs=8)
    _, tr = traced_run(st.strassen_program(cfg), 8)
    return tr, build_diagram(tr)


class TestViewport:
    def test_column_mapping_roundtrip(self):
        vp = Viewport(0.0, 100.0, columns=101)
        assert vp.column_of(0.0) == 0
        assert vp.column_of(100.0) == 100
        assert vp.column_of(50.0) == 50
        assert vp.time_of(50) == pytest.approx(50.0)

    def test_clamping(self):
        vp = Viewport(10.0, 20.0, columns=10)
        assert vp.column_of(-5.0) == 0
        assert vp.column_of(99.0) == 9

    def test_zoom_in_halves_width(self):
        vp = Viewport(0.0, 100.0).zoom(2.0)
        assert vp.width == pytest.approx(50.0)
        assert (vp.t0 + vp.t1) / 2 == pytest.approx(50.0)

    def test_zoom_around_center(self):
        vp = Viewport(0.0, 100.0).zoom(4.0, center=10.0)
        assert vp.t0 == pytest.approx(-2.5)
        assert vp.t1 == pytest.approx(22.5)

    def test_pan(self):
        vp = Viewport(0.0, 10.0).pan(5.0)
        assert (vp.t0, vp.t1) == (5.0, 15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Viewport(5.0, 5.0)
        with pytest.raises(ValueError):
            Viewport(0.0, 1.0, columns=1)
        with pytest.raises(ValueError):
            Viewport(0.0, 1.0).zoom(0.0)

    def test_fit_handles_degenerate_span(self):
        vp = Viewport.fit(3.0, 3.0)
        assert vp.width > 0


class TestDiagramModel:
    def test_bars_and_messages_built(self, strassen_diagram):
        tr, dia = strassen_diagram
        assert len(dia.messages) == 21
        assert len(dia.bars) > 0
        cats = {b.category for b in dia.bars}
        assert {"compute", "send", "recv"} <= cats

    def test_hit_test_bar(self, strassen_diagram):
        tr, dia = strassen_diagram
        some_bar = next(b for b in dia.bars if b.category == "compute")
        mid = (some_bar.t0 + some_bar.t1) / 2
        rec = dia.hit_test(some_bar.proc, mid)
        assert rec is not None
        assert rec.t0 <= mid <= rec.t1

    def test_hit_test_miss(self, strassen_diagram):
        _, dia = strassen_diagram
        assert dia.hit_test(0, -999.0) is None

    def test_click_to_source(self, strassen_diagram):
        """"Clicking on a bar ... can identify the location ... in the
        source code" (§3.1)."""
        _, dia = strassen_diagram
        send_bar = next(b for b in dia.bars if b.category == "send")
        src = dia.source_of_click(send_bar.proc, (send_bar.t0 + send_bar.t1) / 2)
        assert src is not None and "strassen.py" in src

    def test_message_hit_test(self, strassen_diagram):
        _, dia = strassen_diagram
        msg = dia.messages[0]
        mid = (msg.t_sent + msg.t_received) / 2
        hit = dia.hit_test_message(mid)
        assert hit is not None
        assert hit.t_sent <= mid <= hit.t_received


class TestAsciiRendering:
    def test_rows_highest_rank_first(self, strassen_diagram):
        _, dia = strassen_diagram
        text = render_ascii(dia, columns=60)
        lines = text.splitlines()
        assert lines[1].startswith("p7 |")
        assert lines[8].startswith("p0 |")

    def test_stopline_rendered(self, strassen_diagram):
        tr, dia = strassen_diagram
        t_lo, t_hi = tr.span
        dia.set_stopline((t_lo + t_hi) / 2)
        text = render_ascii(dia, columns=60)
        assert "|" in text.splitlines()[1][4:]  # beyond the row label

    def test_message_endpoints_marked(self, strassen_diagram):
        _, dia = strassen_diagram
        text = render_ascii(dia, columns=120)
        assert "s" in text and "r" in text

    def test_zoomed_view_smaller_time_per_col(self, strassen_diagram):
        tr, dia = strassen_diagram
        t_lo, t_hi = tr.span
        full = Viewport.fit(t_lo, t_hi, columns=60)
        zoomed = full.zoom(4.0)
        assert zoomed.time_per_column < full.time_per_column
        text = render_ascii(dia, zoomed, columns=60)
        assert text  # renders without error


class TestSvg:
    def test_svg_structure(self, strassen_diagram):
        _, dia = strassen_diagram
        svg = render_svg(dia)
        assert svg.startswith("<svg")
        assert svg.count("<line") >= len(dia.messages)
        assert svg.count("<rect") >= len(dia.bars)

    def test_stopline_and_tooltips(self, strassen_diagram):
        tr, dia = strassen_diagram
        sl = vertical_stopline_at_time(tr, tr.span[1] / 2)
        dia.set_stopline(sl.time)
        svg = render_svg(dia)
        assert "<title>stopline</title>" in svg
        assert "strassen.py" in svg  # click-through source info

    def test_frontier_overlay(self, strassen_diagram):
        _, dia = strassen_diagram
        dia.set_frontiers({p: 10.0 + p for p in range(8)}, None)
        svg = render_svg(dia)
        assert "<title>frontier</title>" in svg

    def test_save(self, tmp_path, strassen_diagram):
        _, dia = strassen_diagram
        out = tmp_path / "fig.svg"
        save_svg(dia, out)
        assert out.read_text().startswith("<svg")

    def test_escaping(self):
        from repro.viz.svg import _esc

        assert _esc("a<b&c>") == "a&lt;b&amp;c&gt;"


class TestAnimatedView:
    def test_frames_cover_history(self, strassen_diagram):
        tr, dia = strassen_diagram
        view = AnimatedView(dia, columns=40)
        frames = view.frames(step_fraction=0.5)
        assert len(frames) >= 3
        # Final frame window reaches the end of history.
        assert view.position + view.window >= tr.span[1] - 1e-9

    def test_scroll_both_directions(self, strassen_diagram):
        _, dia = strassen_diagram
        view = AnimatedView(dia, columns=40)
        p0 = view.position
        view.forward()
        assert view.position > p0
        view.backward()
        assert view.position == pytest.approx(p0)

    def test_rescale(self, strassen_diagram):
        _, dia = strassen_diagram
        view = AnimatedView(dia, columns=40)
        w = view.window
        view.rescale(2.0)
        assert view.window == pytest.approx(2 * w)
        with pytest.raises(ValueError):
            view.rescale(0)

    def test_seek_clamps(self, strassen_diagram):
        tr, dia = strassen_diagram
        view = AnimatedView(dia, columns=40)
        view.seek(-100.0)
        assert view.position == tr.span[0]
        view.seek(1e9)
        assert view.position + view.window <= tr.span[1] + 1e-9
