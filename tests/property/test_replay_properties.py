"""Property tests of the replay guarantee over random wildcard programs.

The strongest claim in the paper (§4.2) is that a controlled replay has
"identical event causality with the original program execution" even in
the presence of nondeterministic wildcard receives.  These properties
generate random master/worker-flavoured programs with ANY_SOURCE
receives, run them under random schedules, and verify:

* replays under the recorded log reproduce the per-process history
  byte-for-byte (signature-wise), whatever schedule the replay uses;
* stopline replays reproduce exactly the prefix below the thresholds
  (checked with ``verify_replay_prefix``).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as hst

from repro import mp
from repro.instrument import WrapperLibrary
from repro.trace import TraceRecorder, diff_traces, verify_replay_prefix

NPROCS = 4

#: Per-worker task counts (rank 1..3); the master collects every result
#: with ANY_SOURCE, so the matching is schedule-dependent.
workloads = hst.tuples(
    hst.integers(0, 3), hst.integers(0, 3), hst.integers(0, 3)
)
seeds = hst.integers(0, 50)


def build_program(tasks):
    total = sum(tasks)

    def prog(comm):
        if comm.rank == 0:
            got = []
            for _ in range(total):
                st = mp.Status()
                got.append(
                    (comm.recv(source=mp.ANY_SOURCE, tag=1, status=st), st.source)
                )
            return got
        n = tasks[comm.rank - 1]
        comm.compute(float((comm.rank * 5) % 3))
        for i in range(n):
            comm.send((comm.rank, i), dest=0, tag=1)
            comm.compute(1.0)
        return n

    return prog


def traced(tasks, *, policy="run_to_block", seed=0, replay_log=None):
    rt = mp.Runtime(NPROCS, policy=policy, seed=seed, replay_log=replay_log)
    recorder = TraceRecorder(NPROCS)
    WrapperLibrary(rt, recorder)
    rt.run(build_program(tasks))
    rt.shutdown()
    return rt, recorder.snapshot()


@settings(max_examples=20, deadline=None)
@given(workloads, seeds, seeds)
def test_replay_reproduces_history_under_any_schedule(tasks, seed_a, seed_b):
    rt1, trace1 = traced(tasks, policy="random", seed=seed_a)
    _, trace2 = traced(
        tasks, policy="random", seed=seed_b, replay_log=rt1.comm_log
    )
    assert diff_traces(trace1, trace2).identical


@settings(max_examples=15, deadline=None)
@given(workloads, seeds, hst.integers(1, 10))
def test_stopline_replay_prefix_property(tasks, seed, threshold):
    if sum(tasks) == 0:
        return
    rt1, trace1 = traced(tasks, policy="random", seed=seed)
    # Threshold the master somewhere inside its receive loop.
    max_marker = max(
        (r.marker for r in trace1.by_proc(0)), default=0
    )
    if max_marker < 1:
        return
    m = 1 + (threshold % max_marker)
    rt2 = mp.Runtime(NPROCS, replay_log=rt1.comm_log)
    recorder2 = TraceRecorder(NPROCS)
    WrapperLibrary(rt2, recorder2)
    rt2.launch(build_program(tasks))
    rt2.set_threshold(0, m)
    report = rt2.run_until_idle()
    trace2 = recorder2.snapshot()
    rt2.shutdown()
    assert report.outcome in (
        mp.RunOutcome.STOPPED,
        mp.RunOutcome.FINISHED,
    )
    diff = verify_replay_prefix(trace1, trace2, {0: m})
    # Ranks 1..3 ran to completion in both; rank 0 compared below m.
    assert diff.identical, diff.as_text()


@settings(max_examples=15, deadline=None)
@given(workloads, seeds)
def test_results_invariant_across_schedules_modulo_order(tasks, seed):
    """The multiset of received results is schedule-independent even
    though the order races."""
    rt1, _ = traced(tasks, policy="random", seed=seed)
    rt2, _ = traced(tasks, policy="run_to_block")
    payload = lambda results: sorted(p for (p, _src) in results)  # noqa: E731
    assert payload(rt1.results()[0]) == payload(rt2.results()[0])
