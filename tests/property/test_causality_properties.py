"""Property tests of causality, stoplines, and replay over randomly
generated (but deadlock-free) message-passing programs."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as hst

from repro import mp
from repro.analysis import (
    check_trace_causality,
    compute_causal_order,
    cut_of_frontier,
    is_consistent_cut,
)
from repro.debugger import vertical_stopline_at_time, verify_stopline_consistency
from repro.instrument import WrapperLibrary
from repro.trace import TraceRecorder

NPROCS = 4

# ----------------------------------------------------------------------
# random deadlock-free program generation
# ----------------------------------------------------------------------
# A program is, per rank, a list of phases; phase k of every rank
# executes before phase k+1 thanks to a barrier, and within a phase each
# rank sends to a fixed target set then receives everything addressed to
# it (counts are globally consistent by construction).
phase_strategy = hst.lists(
    hst.tuples(hst.integers(0, NPROCS - 1), hst.integers(0, NPROCS - 1),
               hst.integers(0, 2)),  # (src, dst, tag)
    min_size=0,
    max_size=6,
)
program_strategy = hst.lists(phase_strategy, min_size=1, max_size=3)


def build_program(phases):
    """Materialize the random schedule as an SPMD function."""

    def prog(comm):
        rank = comm.rank
        for phase in phases:
            for i, (src, dst, tag) in enumerate(phase):
                if src == rank:
                    comm.send((src, dst, tag, i), dest=dst, tag=tag)
            my_inbound = [m for m in phase if m[1] == rank]
            for src, dst, tag in my_inbound:
                comm.recv(source=src, tag=tag)
            comm.barrier()
        return rank

    return prog


def traced(phases, **kw):
    rt = mp.Runtime(NPROCS, **kw)
    recorder = TraceRecorder(NPROCS)
    WrapperLibrary(rt, recorder)
    rt.run(build_program(phases))
    rt.shutdown()
    return rt, recorder.snapshot()


# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(program_strategy)
def test_trace_causality_invariant(phases):
    """No receive ever completes before its send (DESIGN invariant)."""
    _, trace = traced(phases)
    assert check_trace_causality(trace) is None


@settings(max_examples=25, deadline=None)
@given(program_strategy)
def test_happens_before_is_strict_partial_order(phases):
    _, trace = traced(phases)
    order = compute_causal_order(trace)
    n = len(trace)
    idxs = list(range(0, n, max(1, n // 12)))  # sample for speed
    for a in idxs:
        assert not order.happens_before(a, a)
        for b in idxs:
            if order.happens_before(a, b):
                assert not order.happens_before(b, a)
            for c in idxs:
                if order.happens_before(a, b) and order.happens_before(b, c):
                    assert order.happens_before(a, c)


@settings(max_examples=25, deadline=None)
@given(program_strategy, hst.floats(0.0, 1.0))
def test_vertical_stoplines_always_consistent(phases, frac):
    """Any vertical time slice is a consistent cut (§4.1)."""
    _, trace = traced(phases)
    t_lo, t_hi = trace.span
    t = t_lo + frac * (t_hi - t_lo)
    sl = vertical_stopline_at_time(trace, t)
    assert verify_stopline_consistency(trace, sl)


@settings(max_examples=25, deadline=None)
@given(program_strategy, hst.integers(0, 10_000))
def test_per_proc_prefixes_of_completed_recvs_are_consistent(phases, salt):
    """A cut taken at any completed event boundary has its receives'
    sends inside (exercises cut_of_frontier + is_consistent_cut)."""
    _, trace = traced(phases)
    if len(trace) == 0:
        return
    # Pick one event per proc deterministically from the salt.
    picks = []
    for p in range(trace.nprocs):
        rows = trace.by_proc(p)
        if rows:
            picks.append(rows[salt % len(rows)].index)
    # An arbitrary frontier need not be consistent -- but the inclusive
    # cut of per-proc *time-aligned* prefixes at the max completion time
    # must be.  Build it via the vertical stopline at that time instead.
    t = max(trace[i].t1 for i in picks)
    sl = vertical_stopline_at_time(trace, t)
    assert verify_stopline_consistency(trace, sl)
    cut = cut_of_frontier(trace, picks, inclusive=True)
    if cut is not None and is_consistent_cut(trace, cut):
        # When the random frontier happens to be consistent, all of its
        # receives' sends are inside -- restated directly:
        for pair in trace.message_pairs():
            if pair.recv.index in cut:
                assert pair.send.index in cut


@settings(max_examples=20, deadline=None)
@given(program_strategy, hst.integers(0, 7))
def test_policies_agree_on_results(phases, seed):
    """Interleaving choices never change a deterministic program's
    results (scheduler-determinism invariant)."""
    outcomes = []
    for policy in ("run_to_block", "virtual_time"):
        rt = mp.Runtime(NPROCS, policy=policy, seed=seed)
        rt.run(build_program(phases))
        rt.shutdown()
        outcomes.append(tuple(rt.results()))
    assert len(set(outcomes)) == 1


@settings(max_examples=20, deadline=None)
@given(program_strategy)
def test_replay_reproduces_trace_fingerprint(phases):
    """Replaying under the recorded log yields the identical per-proc
    event fingerprint (replay-fidelity invariant)."""
    rt1, trace1 = traced(phases)
    _, trace2 = traced(phases, replay_log=rt1.comm_log)

    def fingerprint(tr):
        return [
            [(r.kind, r.marker, r.src, r.dst, r.tag, r.seq) for r in tr.by_proc(p)]
            for p in range(tr.nprocs)
        ]

    assert fingerprint(trace1) == fingerprint(trace2)


@settings(max_examples=20, deadline=None)
@given(program_strategy)
def test_markers_strictly_increase(phases):
    """Per-process marker values in a trace are strictly increasing over
    marker-bumping records (monotonicity invariant)."""
    _, trace = traced(phases)
    for p in range(trace.nprocs):
        markers = [r.marker for r in trace.by_proc(p) if r.is_message]
        assert markers == sorted(set(markers))
