"""Property: format v3 agrees with v2 record-for-record.

A v3 file is just an encoding change -- whatever batch of records goes
in, the decoded stream (whole-file, windowed, or columnar via
``read_columns``) must equal what the v2 JSON-lines path yields for the
same batch, including unicode payloads, and a crash-truncated v3 file
must decode to an exact block-aligned prefix.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.mp.datatypes import SourceLocation
from repro.trace import (
    EventKind,
    TraceFileReader,
    TraceFileWriter,
    TraceRecord,
)

NPROCS = 4
KINDS = list(EventKind)

# text that exercises interning and unicode (payload side tables are
# UTF-8 JSON): includes multibyte, RTL, and surrogate-adjacent chars
name_strategy = hst.text(
    alphabet=hst.characters(
        blacklist_categories=("Cs",),  # no lone surrogates (not UTF-8)
        min_codepoint=1,
    ),
    min_size=1,
    max_size=12,
)

time_strategy = hst.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False,
    width=64,
)


@hst.composite
def record_strategy(draw, index: int):
    t0 = draw(time_strategy)
    rec = TraceRecord(
        index=index,
        proc=draw(hst.integers(0, NPROCS - 1)),
        kind=draw(hst.sampled_from(KINDS)),
        t0=t0,
        t1=t0 + draw(hst.floats(0.0, 100.0, allow_nan=False, width=64)),
        marker=draw(hst.integers(0, 2**31)),
        location=SourceLocation(
            draw(name_strategy), draw(hst.integers(0, 10_000)), draw(name_strategy)
        ),
    )
    if draw(hst.booleans()):
        rec.src = draw(hst.integers(-1, NPROCS - 1))
        rec.dst = draw(hst.integers(-1, NPROCS - 1))
        rec.tag = draw(hst.integers(-1, 2**31 - 1))  # i4 column bound
        rec.size = draw(hst.integers(0, 2**40))
        rec.seq = draw(hst.integers(-1, 2**40))
    if draw(hst.booleans()):
        rec.peer_location = SourceLocation(
            draw(name_strategy), draw(hst.integers(0, 10_000)), draw(name_strategy)
        )
        rec.peer_marker = draw(hst.integers(-1, 2**31))
        rec.peer_time = draw(time_strategy)
    if draw(hst.booleans()):
        rec.extra = draw(
            hst.dictionaries(
                name_strategy,
                hst.one_of(
                    hst.integers(-(2**31), 2**31),
                    name_strategy,
                    hst.floats(allow_nan=False, allow_infinity=False),
                ),
                max_size=3,
            )
        )
    return rec


@hst.composite
def batch_strategy(draw, max_size=60):
    n = draw(hst.integers(0, max_size))
    return [draw(record_strategy(i)) for i in range(n)]


def write_file(path, batch, version, index_block=8):
    with TraceFileWriter(
        path, nprocs=NPROCS, version=version, index_block=index_block
    ) as w:
        for rec in batch:
            w.write(rec)


@settings(max_examples=30, deadline=None)
@given(batch=batch_strategy())
def test_v3_equals_v2_record_for_record(tmp_path_factory, batch):
    tmp = tmp_path_factory.mktemp("v3prop")
    p2, p3 = tmp / "t2.trace", tmp / "t3.trace"
    write_file(p2, batch, version=2)
    write_file(p3, batch, version=3)
    via_v2 = TraceFileReader(p2).read_all()
    reader3 = TraceFileReader(p3)
    via_v3 = reader3.read_all()
    assert via_v3 == via_v2 == batch
    # the columnar bulk path agrees record-for-record too
    assert reader3.read_columns().to_records() == via_v2
    # and streaming iteration
    assert list(reader3.iter_records()) == via_v2


@settings(max_examples=20, deadline=None)
@given(
    batch=batch_strategy(max_size=40),
    lo=time_strategy,
    width=hst.floats(0.0, 1e6, allow_nan=False, width=64),
    procs=hst.one_of(
        hst.none(), hst.sets(hst.integers(0, NPROCS - 1), max_size=NPROCS)
    ),
)
def test_v3_windows_equal_v2_windows(tmp_path_factory, batch, lo, width, procs):
    tmp = tmp_path_factory.mktemp("v3win")
    p2, p3 = tmp / "t2.trace", tmp / "t3.trace"
    write_file(p2, batch, version=2)
    write_file(p3, batch, version=3)
    hi = lo + width
    want = TraceFileReader(p2).seek_window(lo, hi, procs)
    reader3 = TraceFileReader(p3)
    assert reader3.seek_window(lo, hi, procs) == want
    assert reader3.read_columns(t_lo=lo, t_hi=hi, procs=procs).to_records() == want


@settings(max_examples=20, deadline=None)
@given(batch=batch_strategy(max_size=40), cut=hst.integers(1, 200))
def test_truncated_v3_decodes_to_block_prefix(tmp_path_factory, batch, cut):
    """Cutting bytes off an unfooted v3 file yields an exact prefix of
    the batch at a block boundary (never scrambled or interleaved)."""
    tmp = tmp_path_factory.mktemp("v3cut")
    path = tmp / "t.trace"
    w = TraceFileWriter(path, nprocs=NPROCS, version=3, index_block=8)
    for rec in batch:
        w.write(rec)
    w.flush()  # crash before close: no footer
    body_start = TraceFileReader(path)._data_offset
    size = path.stat().st_size
    cut = min(cut, size - body_start)
    with path.open("rb+") as fh:
        fh.truncate(size - cut)
    w.close()  # release the handle (footer lands past our truncation point)
    with path.open("rb+") as fh:
        fh.truncate(size - cut)
    reader = TraceFileReader(path)
    got = reader.read_all(tolerant=True)
    assert got == batch[: len(got)]
    assert len(got) % 8 == 0 or len(got) == len(batch)
    if cut > 0:
        assert reader.last_skipped_lines <= 1


@settings(max_examples=25, deadline=None)
@given(
    batch=batch_strategy(max_size=50),
    by=hst.sampled_from(["proc", "hash"]),
    compression=hst.sampled_from([None, "zlib"]),
)
def test_sharded_compressed_equals_single_file(
    tmp_path_factory, batch, by, compression
):
    """A sharded (and optionally compressed) store decodes to exactly
    the same record stream as a plain single-file v3 store -- whole-file,
    columnar, and windowed reads alike."""
    from repro.trace import TraceShardWriter

    tmp = tmp_path_factory.mktemp("shardprop")
    single, sharded = tmp / "single.trace", tmp / "sharded.trace"
    write_file(single, batch, version=3)
    kwargs = {"by": by} if by == "proc" else {"by": by, "shards": 3}
    with TraceShardWriter(
        sharded, nprocs=NPROCS, index_block=8, compression=compression, **kwargs
    ) as w:
        for rec in batch:
            w.write(rec)
    want = TraceFileReader(single).read_all()
    reader = TraceFileReader(sharded)
    assert reader.sharded
    assert reader.read_all() == want == batch
    assert reader.read_columns().to_records() == want
    assert list(reader.iter_records()) == want
    if batch:
        t_lo = min(r.t0 for r in batch)
        t_hi = max(r.t0 for r in batch)
        mid = (t_lo + t_hi) / 2.0
        assert reader.seek_window(t_lo, mid) == TraceFileReader(
            single
        ).seek_window(t_lo, mid)
