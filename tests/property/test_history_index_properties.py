"""Property: the incrementally-built HistoryIndex equals the batch one.

Random deadlock-free programs (the same phase/barrier construction as
``test_causality_properties``) plus randomized ring/LU parameterizations
are traced; the index fed record-by-record -- with catch-up queries at
random interleave points -- must equal the batch reference
(``compute_causal_order`` clocks, ``Trace`` matching) exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro import mp
from repro.analysis import HistoryIndex, compute_causal_order
from repro.apps.lu import LUConfig, lu_program
from repro.apps.ring import ring_program
from repro.instrument import WrapperLibrary
from repro.trace import TraceRecorder

NPROCS = 4

phase_strategy = hst.lists(
    hst.tuples(hst.integers(0, NPROCS - 1), hst.integers(0, NPROCS - 1),
               hst.integers(0, 2)),  # (src, dst, tag)
    min_size=0,
    max_size=6,
)
program_strategy = hst.lists(phase_strategy, min_size=1, max_size=3)


def build_program(phases):
    def prog(comm):
        rank = comm.rank
        for phase in phases:
            for i, (src, dst, tag) in enumerate(phase):
                if src == rank:
                    comm.send((src, dst, tag, i), dest=dst, tag=tag)
            for src, dst, tag in (m for m in phase if m[1] == rank):
                comm.recv(source=src, tag=tag)
            comm.barrier()
        return rank

    return prog


def traced(program, nprocs):
    rt = mp.Runtime(nprocs)
    recorder = TraceRecorder(nprocs)
    WrapperLibrary(rt, recorder)
    rt.run(program)
    rt.shutdown()
    return recorder.snapshot()


def assert_incremental_equals_batch(trace, catchup_every):
    batch_order = compute_causal_order(trace)
    index = HistoryIndex(nprocs=trace.nprocs)
    for k, rec in enumerate(trace):
        index.extend(rec)
        if catchup_every and k % catchup_every == 0:
            index.message_pairs()
            _ = index.clocks
    np.testing.assert_array_equal(index.clocks, batch_order.clocks)
    assert [(p.send.index, p.recv.index) for p in index.message_pairs()] == [
        (p.send.index, p.recv.index) for p in trace.message_pairs()
    ]
    assert sorted(r.index for r in index.unmatched_sends()) == sorted(
        r.index for r in trace.unmatched_sends()
    )
    assert [r.index for r in index.unmatched_recvs()] == [
        r.index for r in trace.unmatched_recvs()
    ]
    stats = index.stats()
    assert stats.clock_builds <= 1
    assert stats.matching_builds <= 1


@settings(max_examples=20, deadline=None)
@given(program_strategy, hst.integers(0, 13))
def test_incremental_equals_batch_random_programs(phases, catchup_every):
    trace = traced(build_program(phases), NPROCS)
    assert_incremental_equals_batch(trace, catchup_every)


@settings(max_examples=8, deadline=None)
@given(hst.integers(1, 3), hst.integers(2, 5), hst.integers(0, 7))
def test_incremental_equals_batch_ring(rounds, nprocs, catchup_every):
    trace = traced(ring_program(rounds=rounds), nprocs)
    assert_incremental_equals_batch(trace, catchup_every)


@settings(max_examples=5, deadline=None)
@given(hst.integers(1, 2), hst.integers(1, 2), hst.integers(0, 31))
def test_incremental_equals_batch_lu(sweeps, panels, catchup_every):
    cfg = LUConfig(grid=8, nprocs=4, panels=panels, sweeps=sweeps)
    trace = traced(lu_program(cfg), 4)
    assert_incremental_equals_batch(trace, catchup_every)
