"""Property tests of the pure data structures: marker vectors, trace
records, viewports, the checkpoint backlog, and dissemination."""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as hst

from repro.debugger import LogBacklog
from repro.mp.datatypes import SourceLocation
from repro.trace import EventKind, MarkerVector, Trace, TraceRecord
from repro.viz import Viewport

# ----------------------------------------------------------------------
# MarkerVector algebra
# ----------------------------------------------------------------------
marker_vectors = hst.dictionaries(
    hst.integers(0, 5), hst.integers(0, 100), max_size=6
).map(MarkerVector)


@settings(max_examples=200)
@given(marker_vectors)
def test_vector_dominates_reflexive(v):
    assert v.dominates(v)


@settings(max_examples=200)
@given(marker_vectors, marker_vectors)
def test_merged_min_is_lower_bound(a, b):
    m = a.merged_min(b)
    assert a.dominates(m) and b.dominates(m)


@settings(max_examples=200)
@given(marker_vectors, marker_vectors)
def test_merged_min_commutative(a, b):
    assert a.merged_min(b) == b.merged_min(a)


#: three fully-constrained vectors over the same rank set (transitivity
#: only holds for comparable vectors: an unconstrained rank is a
#: wildcard by design).
_full_triples = hst.integers(1, 5).flatmap(
    lambda n: hst.tuples(
        *(
            hst.lists(hst.integers(0, 100), min_size=n, max_size=n).map(
                lambda vals: MarkerVector(dict(enumerate(vals)))
            )
            for _ in range(3)
        )
    )
)


@settings(max_examples=200)
@given(_full_triples)
def test_dominates_transitive(triple):
    a, b, c = triple
    if a.dominates(b) and b.dominates(c):
        assert a.dominates(c)


# ----------------------------------------------------------------------
# TraceRecord JSON roundtrip
# ----------------------------------------------------------------------
locations = hst.builds(
    SourceLocation,
    filename=hst.text(min_size=1, max_size=20).filter(lambda s: "\x00" not in s),
    lineno=hst.integers(0, 10_000),
    function=hst.text(min_size=1, max_size=15),
)

records = hst.builds(
    TraceRecord,
    index=hst.integers(0, 10**6),
    proc=hst.integers(0, 63),
    kind=hst.sampled_from(list(EventKind)),
    t0=hst.floats(0, 1e6, allow_nan=False),
    t1=hst.floats(0, 1e6, allow_nan=False),
    marker=hst.integers(0, 10**6),
    location=locations,
    src=hst.integers(-1, 63),
    dst=hst.integers(-1, 63),
    tag=hst.integers(-1, 1000),
    size=hst.integers(0, 10**6),
    seq=hst.integers(-1, 10**4),
    construct_id=hst.integers(-1, 100),
)


@settings(max_examples=300)
@given(records)
def test_record_json_roundtrip(rec):
    assert TraceRecord.from_jsonable(rec.to_jsonable()) == rec


# ----------------------------------------------------------------------
# Viewport math
# ----------------------------------------------------------------------
def viewport_strategy():
    return hst.tuples(
        hst.floats(-1e5, 1e5, allow_nan=False),
        hst.floats(1e-3, 1e5, allow_nan=False),
        hst.integers(2, 500),
    ).map(lambda t: Viewport(t[0], t[0] + t[1], t[2]))


@settings(max_examples=200)
@given(viewport_strategy(), hst.floats(-2.0, 3.0))
def test_column_clamped(vp, rel):
    t = vp.t0 + rel * vp.width
    col = vp.column_of(t)
    assert 0 <= col <= vp.columns - 1


@settings(max_examples=200)
@given(viewport_strategy(), hst.integers(0, 499))
def test_time_of_column_inside(vp, col):
    assume(col < vp.columns)
    t = vp.time_of(col)
    assert vp.t0 - 1e-6 <= t <= vp.t1 + 1e-6


@settings(max_examples=200)
@given(viewport_strategy(), hst.floats(1.01, 10.0))
def test_zoom_out_then_in_preserves_center(vp, factor):
    center = (vp.t0 + vp.t1) / 2
    back = vp.zoom(factor).zoom(1.0 / factor)
    assert abs(((back.t0 + back.t1) / 2) - center) <= max(1e-6, abs(center) * 1e-9)
    assert abs(back.width - vp.width) <= max(1e-6, vp.width * 1e-9)


# ----------------------------------------------------------------------
# LogBacklog
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(hst.integers(1, 6), hst.integers(1, 200))
def test_backlog_retains_latest_and_is_logarithmic(base, n):
    backlog = LogBacklog(base=base)
    for i in range(n):
        backlog.add(MarkerVector({0: i + 1}))
    assert backlog.latest() is not None
    assert backlog.latest().markers[0] == n
    # O(base * log n) retention: generous constant bound.
    import math

    assert len(backlog) <= base * (int(math.log2(n + 1)) + 3)


@settings(max_examples=100, deadline=None)
@given(hst.integers(1, 4), hst.lists(hst.integers(1, 100), min_size=1, max_size=50),
       hst.integers(1, 100))
def test_backlog_nearest_before_never_exceeds_target(base, values, target):
    backlog = LogBacklog(base=base)
    for v in values:
        backlog.add(MarkerVector({0: v}))
    cp = backlog.nearest_before(MarkerVector({0: target}))
    if cp is not None:
        assert cp.markers[0] <= target


# ----------------------------------------------------------------------
# Dissemination conserves event counts
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    hst.lists(hst.sampled_from(["f", "g", "h"]), min_size=1, max_size=120),
    hst.integers(2, 32),
)
def test_dissemination_conserves_calls(calls, limit):
    """Random call sequences: merged arc counts sum to the call count."""
    from repro.graphs import ArcKind, TraceGraph

    records = []
    t = 0.0
    for i, fn in enumerate(calls):
        records.append(
            TraceRecord(
                index=len(records), proc=0, kind=EventKind.FUNC_ENTRY,
                t0=t, t1=t, marker=i + 1,
                location=SourceLocation("app.py", 1, fn),
            )
        )
        records.append(
            TraceRecord(
                index=len(records), proc=0, kind=EventKind.FUNC_EXIT,
                t0=t + 0.5, t1=t + 0.5, marker=i + 1,
                location=SourceLocation("app.py", 1, fn),
            )
        )
        t += 1.0
    trace = Trace(records, nprocs=1)
    g = TraceGraph.from_trace(trace, arc_limit=limit)
    total = sum(a.count for a in g.arcs() if a.kind is ArcKind.CALL)
    assert total == len(calls)
