"""Property-based tests of the mailbox matching rules.

These check the invariants the whole trace-graph construction rests on
(DESIGN.md "Key invariants"): non-overtaking order per (src, tag),
wildcard determinism (smallest arrival order), posted-receive priority,
and conservation (every deposit is eventually matched or still queued).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.mp.channel import Mailbox
from repro.mp.datatypes import ANY_SOURCE, ANY_TAG
from repro.mp.message import Envelope, Message

# A script is a list of operations against one mailbox (owner rank 0):
#   ("send", src, tag)   deposit the next message from src with tag
#   ("recv", src, tag)   post a receive (possibly with wildcards)
sends = hst.tuples(
    hst.just("send"), hst.integers(0, 3), hst.integers(0, 2)
)
recvs = hst.tuples(
    hst.just("recv"),
    hst.sampled_from([ANY_SOURCE, 0, 1, 2, 3]),
    hst.sampled_from([ANY_TAG, 0, 1, 2]),
)
scripts = hst.lists(hst.one_of(sends, recvs), min_size=1, max_size=40)


def run_script(script):
    """Execute a script; returns (mailbox, matches) where matches is a
    list of (posted pattern, matched envelope) in completion order."""
    box = Mailbox(owner_rank=0)
    matches: list[tuple[tuple[int, int], Envelope]] = []
    box.on_message_matched = lambda msg, pending: matches.append(
        ((pending.source, pending.tag), msg.envelope)
    )
    seq_counter: dict[tuple[int, int], int] = {}
    arrival = 0
    for op, a, b in script:
        if op == "send":
            key = (a, b)
            seq = seq_counter.get(key, 0)
            seq_counter[key] = seq + 1
            msg = Message(envelope=Envelope(src=a, dst=0, tag=b, seq=seq), payload=None)
            msg.arrival_order = arrival
            arrival += 1
            box.deposit(msg)
        else:
            box.post(a, b)
    return box, matches


@settings(max_examples=200, deadline=None)
@given(scripts)
def test_non_overtaking_per_src_tag(script):
    """Matched envelopes from one (src, tag) complete in seq order."""
    _, matches = run_script(script)
    seen: dict[tuple[int, int], int] = {}
    for _, env in matches:
        key = (env.src, env.tag)
        last = seen.get(key, -1)
        assert env.seq == last + 1, f"overtaking on {key}: {env.seq} after {last}"
        seen[key] = env.seq


@settings(max_examples=200, deadline=None)
@given(scripts)
def test_matches_satisfy_posted_patterns(script):
    """Every match respects the receive's (source, tag) pattern."""
    _, matches = run_script(script)
    for (src, tag), env in matches:
        assert src in (ANY_SOURCE, env.src)
        assert tag in (ANY_TAG, env.tag)


@settings(max_examples=200, deadline=None)
@given(scripts)
def test_conservation(script):
    """deposited == matched + still queued; posts == matched + pending."""
    box, matches = run_script(script)
    n_posts = sum(1 for op, *_ in script if op == "recv")
    n_sends = sum(1 for op, *_ in script if op == "send")
    assert box.total_deposited == n_sends
    assert box.total_matched == len(matches)
    assert n_sends == len(matches) + len(box.queued_messages)
    assert n_posts == len(matches) + len(box.posted_receives)


@settings(max_examples=200, deadline=None)
@given(scripts)
def test_no_simultaneous_match_candidates_left(script):
    """Quiescence: no queued message satisfies any pending receive."""
    box, _ = run_script(script)
    for pending in box.posted_receives:
        for msg in box.queued_messages:
            assert not pending.accepts(msg), (
                f"mailbox left {msg.envelope} deliverable to "
                f"({pending.source},{pending.tag})"
            )


@settings(max_examples=150, deadline=None)
@given(scripts)
def test_determinism(script):
    """The same script always yields the same match sequence."""
    _, m1 = run_script(script)
    _, m2 = run_script(script)
    assert m1 == m2


@settings(max_examples=150, deadline=None)
@given(scripts)
def test_wildcard_takes_earliest_arrival(script):
    """When a wildcard receive matches from the queue, it takes the
    queued message with the smallest arrival order among candidates."""
    box = Mailbox(owner_rank=0)
    taken: list[Message] = []
    queued_before: list[list[Message]] = []

    original_take = box._take_queued

    def spying_take(pending):
        queued_before.append(list(box._queued))
        msg = original_take(pending)
        if msg is not None:
            taken.append((pending, msg))
        else:
            queued_before.pop()
        return msg

    box._take_queued = spying_take
    seq_counter: dict[tuple[int, int], int] = {}
    arrival = 0
    for op, a, b in script:
        if op == "send":
            key = (a, b)
            seq = seq_counter.get(key, 0)
            seq_counter[key] = seq + 1
            msg = Message(envelope=Envelope(src=a, dst=0, tag=b, seq=seq), payload=None)
            msg.arrival_order = arrival
            arrival += 1
            box.deposit(msg)
        else:
            box.post(a, b)
    for (pending, msg), snapshot in zip(taken, queued_before):
        # NB: use the raw pattern -- pending.accepts() refuses once the
        # receive is matched, and by now it is.
        candidates = [
            m for m in snapshot if m.matches(pending.source, pending.tag)
        ]
        assert candidates, "a match implies at least one candidate"
        assert msg.arrival_order == min(c.arrival_order for c in candidates)
