"""Property: the vectorized (numpy) analysis kernels equal the scalar
reference (``engine="python"``) kernels exactly.

Random synthetic traces -- messages with wildcard-receive patterns,
duplicate message keys, unmatched sends/receives, waits/collectives and
compute -- are pushed through both engines, batch and incrementally
(streamed in chunks with catch-up queries between chunks), and every
derived artifact must be identical: clock matrices (integer-exact),
matching pairs and unmatched lists, window queries, race reports, and
critical paths (bitwise float equality: the segment ``cumsum`` DP
performs the same sequential additions as the scalar loop).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.analysis import HistoryIndex
from repro.analysis.critical_path import critical_path
from repro.analysis.races import detect_races
from repro.mp.datatypes import ANY_SOURCE, ANY_TAG, SourceLocation
from repro.trace.events import EventKind, TraceRecord

LOC = SourceLocation("prog.py", 1, "main")

OTHER_KINDS = (
    EventKind.COMPUTE,
    EventKind.WAIT,
    EventKind.BARRIER,
    EventKind.SENDRECV,
    EventKind.ALLREDUCE,
)


def _record(i, proc, kind, **kw):
    return TraceRecord(
        index=i, proc=proc, kind=kind, t0=kw.pop("t0"), t1=kw.pop("t1"),
        marker=i + 1, location=LOC, **kw,
    )


@hst.composite
def trace_records(draw, max_events=120, max_procs=5):
    """A causally-valid random record list with adversarial structure:
    wildcard receives, optional duplicate keys, drops (unmatched sends),
    stray receives (unmatched), zero-weight kinds."""
    nprocs = draw(hst.integers(1, max_procs))
    n = draw(hst.integers(1, max_events))
    dup_keys = draw(hst.booleans())
    rng_seed = draw(hst.integers(0, 2**31))
    rng = np.random.default_rng(rng_seed)
    records, open_sends, seqs = [], [], {}
    t = 0.0
    for i in range(n):
        t += float(rng.random())
        p = int(rng.integers(nprocs))
        roll = float(rng.random())
        if roll < 0.30:
            q = int(rng.integers(nprocs))
            tag = int(rng.integers(3))
            if dup_keys:
                seq = int(rng.integers(2))  # collisions on purpose
            else:
                seq = seqs.get((p, q), 0)
                seqs[(p, q)] = seq + 1
            rec = _record(i, p, EventKind.SEND, src=p, dst=q, tag=tag,
                          seq=seq, size=int(rng.integers(100)),
                          t0=t, t1=t + 0.1)
            open_sends.append(rec)
            records.append(rec)
        elif roll < 0.55 and open_sends:
            # deliver a pending send (drop some: unmatched sends remain)
            s = open_sends.pop(int(rng.integers(len(open_sends))))
            extra = {}
            if rng.random() < 0.4:
                extra["posted_src"] = ANY_SOURCE
            if rng.random() < 0.3:
                extra["posted_tag"] = ANY_TAG
            records.append(
                _record(i, s.dst, EventKind.RECV, src=s.src, dst=s.dst,
                        tag=s.tag, seq=s.seq, extra=extra, t0=t, t1=t + 0.2)
            )
        elif roll < 0.62:
            # stray receive: no matching send exists
            records.append(
                _record(i, p, EventKind.RECV, src=int(rng.integers(nprocs)),
                        dst=p, tag=9, seq=10_000 + i, t0=t, t1=t + 0.2)
            )
        else:
            kind = OTHER_KINDS[int(rng.integers(len(OTHER_KINDS)))]
            records.append(_record(i, p, kind, t0=t, t1=t + 0.05))
    return nprocs, records


def build_pair(nprocs, records, chunk):
    """One index per engine, fed identically; ``chunk`` > 0 streams with
    interleaved catch-up queries (incremental path), 0 builds in batch."""
    engines = {}
    for engine in ("python", "numpy"):
        idx = HistoryIndex(nprocs=nprocs, engine=engine)
        if chunk:
            for lo in range(0, len(records), chunk):
                for rec in records[lo:lo + chunk]:
                    idx.extend(rec)
                idx.message_pairs()  # force incremental catch-up paths
                _ = idx.clocks
        else:
            idx.extend_many(records)
        engines[engine] = idx
    return engines["python"], engines["numpy"]


def assert_same_matching(py, vec):
    assert [(p.send.index, p.recv.index) for p in py.message_pairs()] == [
        (p.send.index, p.recv.index) for p in vec.message_pairs()
    ]
    assert [r.index for r in py.unmatched_sends()] == [
        r.index for r in vec.unmatched_sends()
    ]
    assert [r.index for r in py.unmatched_recvs()] == [
        r.index for r in vec.unmatched_recvs()
    ]
    assert py.send_of_recv == vec.send_of_recv


@settings(max_examples=60, deadline=None)
@given(trace_records(), hst.integers(0, 17))
def test_clocks_and_matching_engines_equal(tr, chunk):
    nprocs, records = tr
    py, vec = build_pair(nprocs, records, chunk)
    assert_same_matching(py, vec)
    np.testing.assert_array_equal(py.clocks, vec.clocks)
    # lazy catch-up discipline holds for both engines
    assert py.stats().clock_builds == 1
    assert vec.stats().clock_builds == 1


@settings(max_examples=40, deadline=None)
@given(trace_records(), hst.integers(0, 17), hst.data())
def test_window_engines_equal(tr, chunk, data):
    nprocs, records = tr
    py, vec = build_pair(nprocs, records, chunk)
    t_lo, t_hi = py.span
    a = data.draw(hst.floats(t_lo - 1.0, t_hi + 1.0, allow_nan=False))
    b = data.draw(hst.floats(t_lo - 1.0, t_hi + 1.0, allow_nan=False))
    for lo, hi in [(min(a, b), max(a, b)), (t_lo, t_hi), (t_hi, t_lo)]:
        assert [r.index for r in py.window(lo, hi)] == [
            r.index for r in vec.window(lo, hi)
        ]


@settings(max_examples=40, deadline=None)
@given(trace_records(), hst.booleans())
def test_races_engines_equal(tr, include_tag_wildcards):
    nprocs, records = tr
    py, vec = build_pair(nprocs, records, 0)

    def key(races):
        return [
            (r.recv.index, r.matched_send.index, [a.index for a in r.alternatives])
            for r in races
        ]

    ra = detect_races(
        py.trace, include_tag_wildcards=include_tag_wildcards,
        index=py, engine="python",
    )
    rb = detect_races(
        vec.trace, include_tag_wildcards=include_tag_wildcards,
        index=vec, engine="numpy",
    )
    assert key(ra) == key(rb)


@settings(max_examples=40, deadline=None)
@given(trace_records())
def test_critical_path_engines_equal(tr):
    nprocs, records = tr
    py, vec = build_pair(nprocs, records, 0)
    ca = critical_path(py.trace, index=py, engine="python")
    cb = critical_path(vec.trace, index=vec, engine="numpy")
    assert [r.index for r in ca.records] == [r.index for r in cb.records]
    assert ca.length == cb.length  # bitwise: same sequential additions
    assert ca.span == cb.span
    assert ca.weights == cb.weights


@settings(max_examples=25, deadline=None)
@given(trace_records(), hst.integers(1, 17))
def test_streamed_equals_batch_per_engine(tr, chunk):
    nprocs, records = tr
    for engine in ("python", "numpy"):
        batch = HistoryIndex(records, nprocs=nprocs, engine=engine)
        streamed = HistoryIndex(nprocs=nprocs, engine=engine)
        for lo in range(0, len(records), chunk):
            for rec in records[lo:lo + chunk]:
                streamed.extend(rec)
            streamed.message_pairs()
            _ = streamed.clocks
            t0, t1 = streamed.span
            streamed.window(t0, (t0 + t1) / 2)
        np.testing.assert_array_equal(batch.clocks, streamed.clocks)
        assert_same_matching(batch, streamed)
        assert streamed.stats().clock_builds == 1
        assert streamed.stats().matching_builds == 1
        if engine == "numpy":  # the python engine's window() is a scan
            assert streamed.stats().window_builds == 1
