"""uinst (profile-hook) instrumentation and the UserMonitor."""

from __future__ import annotations

import pytest

from repro import mp
from repro.apps import fibonacci as fibmod
from repro.apps import strassen as stmod
from repro.instrument import Uinst, UserMonitor, instrument_function
from repro.trace import EventKind, TraceRecorder


class TestUinstAutomatic:
    def test_function_entries_counted(self):
        rt = mp.Runtime(1)
        uinst = Uinst(rt)
        uinst.register_function(fibmod.fib)
        rt.run(fibmod.fib_program(10), target_wrappers=[uinst.target_wrapper()])
        assert uinst.entry_count == fibmod.fib_call_count(10)

    def test_func_entry_exit_records(self):
        rt = mp.Runtime(1)
        recorder = TraceRecorder(1)
        uinst = Uinst(rt, recorder)
        uinst.register_function(fibmod.fib)
        rt.run(fibmod.fib_program(6), target_wrappers=[uinst.target_wrapper()])
        tr = recorder.snapshot()
        entries = tr.of_kind(EventKind.FUNC_ENTRY)
        exits = tr.of_kind(EventKind.FUNC_EXIT)
        assert len(entries) == len(exits) == fibmod.fib_call_count(6)
        assert all(r.location.function == "fib" for r in entries)

    def test_register_module(self):
        rt = mp.Runtime(2)
        uinst = Uinst(rt)
        uinst.register_module(stmod)
        assert uinst.instrumented_count > 5  # strassen's helper functions
        cfg = stmod.StrassenConfig(n=8, nprocs=2)
        rt.run(
            stmod.strassen_program(cfg),
            target_wrappers=[uinst.target_wrapper()],
        )
        assert uinst.entry_count > 0

    def test_markers_advance_with_entries(self):
        rt = mp.Runtime(1)
        uinst = Uinst(rt)
        uinst.register_function(fibmod.fib)
        rt.run(fibmod.fib_program(8), target_wrappers=[uinst.target_wrapper()])
        assert rt.procs[0].marker == fibmod.fib_call_count(8)

    def test_unregistered_functions_ignored(self):
        rt = mp.Runtime(1)
        uinst = Uinst(rt)
        uinst.register_function(fibmod.fib)

        def prog(comm):
            return sum(i * i for i in range(50))  # no fib calls

        rt.run(prog, target_wrappers=[uinst.target_wrapper()])
        assert uinst.entry_count == 0

    def test_non_function_registration_rejected(self):
        rt = mp.Runtime(1)
        uinst = Uinst(rt)
        with pytest.raises(TypeError, match="code object"):
            uinst.register_function("not a function")

    def test_virtual_cost_dilates_clock(self):
        def run(charge):
            rt = mp.Runtime(1)
            uinst = Uinst(rt, charge_virtual_cost=charge)
            uinst.register_function(fibmod.fib)
            rt.run(fibmod.fib_program(10), target_wrappers=[uinst.target_wrapper()])
            return rt.clocks()[0]

        assert run(True) > run(False)

    def test_threshold_stops_inside_recursion(self):
        """The debugger can stop fib mid-recursion at an exact call count."""
        rt = mp.Runtime(1)
        uinst = Uinst(rt)
        uinst.register_function(fibmod.fib)
        rt.launch(fibmod.fib_program(12), target_wrappers=[uinst.target_wrapper()])
        rt.set_threshold(0, 50)
        report = rt.run_until_idle()
        assert report.outcome is mp.RunOutcome.STOPPED
        assert rt.procs[0].marker == 50
        rt.set_threshold(0, None)
        final = rt.resume()
        assert final.outcome is mp.RunOutcome.FINISHED
        assert rt.results()[0] == fibmod.fib(12)


class TestManualDecorator:
    def test_decorated_function_fires_monitor(self):
        rt = mp.Runtime(1)
        recorder = TraceRecorder(1)

        @instrument_function(rt, recorder)
        def work(x, y):
            return x + y

        def prog(comm):
            return work(2, 3) + work(4, 5)

        rt.run(prog)
        tr = recorder.snapshot()
        assert len(tr.of_kind(EventKind.FUNC_ENTRY)) == 2
        assert rt.results() == [14]
        assert rt.procs[0].marker == 2


class TestUserMonitor:
    def test_history_records_sites_and_args(self):
        rt = mp.Runtime(1)
        rt.launch(fibmod.fib_program(5))
        monitor = UserMonitor(rt)
        uinst = Uinst(rt)
        uinst.register_function(fibmod.fib)
        # launch() happened without the uinst wrapper; drive manually via
        # bump_marker to test the hook path instead.
        rt.run_until_idle()
        rt.shutdown()
        assert monitor.total_calls == 0  # no instrumentation => no calls

    def test_monitor_with_uinst(self):
        rt = mp.Runtime(1)
        uinst = Uinst(rt)
        uinst.register_function(fibmod.fib)
        rt.launch(fibmod.fib_program(6), target_wrappers=[uinst.target_wrapper()])
        monitor = UserMonitor(rt, history_limit=64)
        rt.run_until_idle()
        assert monitor.total_calls == fibmod.fib_call_count(6)
        entries = monitor.history(0)
        assert len(entries) == min(64, fibmod.fib_call_count(6))
        # "records ... the first two arguments": fib has one arg.
        assert entries[-1].args[0] in {repr(n) for n in range(7)}
        assert entries[-1].location.function == "fib"

    def test_attach_before_launch_rejected(self):
        rt = mp.Runtime(1)
        with pytest.raises(RuntimeError, match="launch"):
            UserMonitor(rt)

    def test_threshold_api(self):
        def prog(comm):
            for _ in range(10):
                comm.proc.bump_marker()

        rt = mp.Runtime(2)
        rt.launch(prog)
        monitor = UserMonitor(rt)
        monitor.set_thresholds({0: 3, 1: 5})
        report = rt.run_until_idle()
        assert report.outcome is mp.RunOutcome.STOPPED
        assert monitor.marker_vector().as_dict() == {0: 3, 1: 5}
        monitor.clear_thresholds()
        rt.resume()
        rt.shutdown()

    def test_detach(self):
        def prog(comm):
            for _ in range(4):
                comm.proc.bump_marker()

        rt = mp.Runtime(1)
        rt.launch(prog)
        monitor = UserMonitor(rt)
        monitor.detach()
        rt.run_until_idle()
        assert monitor.total_calls == 0
        rt.shutdown()

    def test_entry_at_marker(self):
        def prog(comm):
            for _ in range(6):
                comm.proc.bump_marker()

        rt = mp.Runtime(1)
        rt.launch(prog)
        monitor = UserMonitor(rt)
        rt.run_until_idle()
        entry = monitor.entry_at_marker(0, 4)
        assert entry is not None and entry.marker == 4
        assert monitor.entry_at_marker(0, 99) is None
        rt.shutdown()
