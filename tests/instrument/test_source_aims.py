"""AIMS-style source-to-source instrumentation (Section 2.1)."""

from __future__ import annotations

import pytest

from repro import mp
from repro.instrument import (
    AimsMonitor,
    instrument_app_function,
    instrument_source,
    instrumented_text,
    load_instrumented_module,
)
from repro.trace import EventKind, TraceRecorder

SAMPLE = '''
def helper(x):
    """Doc kept intact."""
    return x * 2

def work(n):
    total = 0
    for i in range(n):
        total += helper(i)
    return total
'''


class TestTransform:
    def test_functions_registered(self):
        _, table = instrument_source(SAMPLE, constructs=("function",))
        names = [c.name for c in table.by_kind("function")]
        assert names == ["helper", "work"]
        assert table[0].location.lineno > 0

    def test_loops_registered(self):
        _, table = instrument_source(SAMPLE, constructs=("function", "loop"))
        assert len(table.by_kind("loop")) == 1
        assert table.by_kind("loop")[0].name.startswith("for@")

    def test_unknown_construct_rejected(self):
        with pytest.raises(ValueError, match="unknown construct"):
            instrument_source(SAMPLE, constructs=("assignment",))

    def test_transformed_text_visible(self):
        """The user can inspect the transformed source, as with AIMS."""
        text = instrumented_text(SAMPLE)
        assert "__aims__.enter(0)" in text
        assert "__aims__.exit(__aims_tok_0)" in text
        assert "finally:" in text

    def test_docstring_preserved(self):
        text = instrumented_text(SAMPLE)
        assert "Doc kept intact." in text
        # Docstring stays first in the body, before the monitor call.
        assert text.index("Doc kept intact") < text.index("__aims__.enter(0)")


class TestInstrumentedExecution:
    def _run(self, constructs=("function",), n=4):
        rt = mp.Runtime(1)
        recorder = TraceRecorder(1)
        monitor = AimsMonitor(rt, recorder)
        module = load_instrumented_module(SAMPLE, monitor, constructs=constructs)

        def prog(comm):
            return module.work(n)

        rt.run(prog)
        return rt, monitor, recorder.snapshot()

    def test_results_unchanged(self):
        rt, _, _ = self._run(n=5)
        assert rt.results() == [2 * sum(range(5))]

    def test_entry_exit_records(self):
        _, monitor, tr = self._run(n=4)
        entries = tr.of_kind(EventKind.FUNC_ENTRY)
        exits = tr.of_kind(EventKind.FUNC_EXIT)
        # work once + helper 4 times.
        assert len(entries) == len(exits) == 5
        assert monitor.enter_count == 5

    def test_loop_resolution(self):
        """Finer constructs => more records ("arbitrary level of
        resolution")."""
        _, _, coarse = self._run(constructs=("function",))
        _, _, fine = self._run(constructs=("function", "loop"))
        assert len(fine) > len(coarse)
        assert len(fine.of_kind(EventKind.LOOP_ENTRY)) == 1

    def test_construct_ids_in_records(self):
        _, monitor, tr = self._run()
        cids = {r.construct_id for r in tr.of_kind(EventKind.FUNC_ENTRY)}
        names = {monitor.table[cid].name for cid in cids}
        assert names == {"helper", "work"}

    def test_toggle_collection(self):
        rt = mp.Runtime(1)
        recorder = TraceRecorder(1)
        monitor = AimsMonitor(rt, recorder)
        module = load_instrumented_module(SAMPLE, monitor)

        def prog(comm):
            module.work(2)
            monitor.set_enabled(False)  # toggle off mid-run (Section 3)
            module.work(2)
            monitor.set_enabled(True)
            return module.work(2)

        rt.run(prog)
        entries = recorder.snapshot().of_kind(EventKind.FUNC_ENTRY)
        assert len(entries) == 6  # first and third work(2), not the second

    def test_markers_generated(self):
        """The replay extension: AIMS monitors generate markers too."""
        rt, monitor, _ = self._run(n=3)
        assert rt.procs[0].marker == monitor.enter_count

    def test_flush_on_demand(self, tmp_path):
        rt = mp.Runtime(1)
        recorder = TraceRecorder(1)
        recorder.attach_file(tmp_path / "aims.jsonl")
        monitor = AimsMonitor(rt, recorder)
        module = load_instrumented_module(SAMPLE, monitor)

        def prog(comm):
            module.work(3)
            return monitor.flush()  # the during-execution flush

        rt.run(prog)
        assert rt.results()[0] > 0


class TestInstrumentFunctionBySource:
    def test_roundtrip(self):
        rt = mp.Runtime(1)
        recorder = TraceRecorder(1)
        monitor = AimsMonitor(rt, recorder)

        from repro.apps.fibonacci import fib

        inst_fib = instrument_app_function(fib, monitor)

        def prog(comm):
            return inst_fib(7)

        rt.run(prog)
        assert rt.results() == [13]
        # Only the OUTER call is instrumented: the transformed body's
        # recursive calls refer to the instrumented name too, so every
        # recursion level reports.
        assert monitor.enter_count >= 1

    def test_closure_rejected(self):
        rt = mp.Runtime(1)
        monitor = AimsMonitor(rt)

        def outer():
            bound = 3

            def inner(x):
                return x + bound

            return inner

        with pytest.raises(ValueError, match="closure"):
            instrument_app_function(outer(), monitor)
