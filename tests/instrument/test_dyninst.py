"""Debug-time (Dyninst-style) patching -- the §6 extension."""

from __future__ import annotations

import pytest

from repro import mp
from repro.apps import fibonacci as fibmod
from repro.instrument import DynPatcher
from repro.trace import EventKind, TraceRecorder


class TestDynPatcher:
    def test_patch_counts_recursive_calls(self):
        rt = mp.Runtime(1)
        patcher = DynPatcher(rt)
        rec = patcher.patch_function(fibmod, "fib")
        try:
            rt.run(fibmod.fib_program(10))
        finally:
            patcher.unpatch_all()
        # Recursion goes through the module global, so every level is
        # intercepted -- as Dyninst's trampolines would.
        assert rec.calls == fibmod.fib_call_count(10)
        assert patcher.entry_count == rec.calls
        assert rt.results() == [55]

    def test_unpatch_restores_original(self):
        rt = mp.Runtime(1)
        original = fibmod.fib
        patcher = DynPatcher(rt)
        patcher.patch_function(fibmod, "fib")
        assert fibmod.fib is not original
        assert patcher.unpatch_all() == 1
        assert fibmod.fib is original
        rt.shutdown()

    def test_context_manager_unpatches(self):
        rt = mp.Runtime(1)
        original = fibmod.fib
        with DynPatcher(rt) as patcher:
            patcher.patch_function(fibmod, "fib")
            assert fibmod.fib is not original
        assert fibmod.fib is original
        rt.shutdown()

    def test_records_func_events(self):
        rt = mp.Runtime(1)
        recorder = TraceRecorder(1)
        with DynPatcher(rt, recorder) as patcher:
            patcher.patch_function(fibmod, "fib")
            rt.run(fibmod.fib_program(6))
        tr = recorder.snapshot()
        entries = tr.of_kind(EventKind.FUNC_ENTRY)
        exits = tr.of_kind(EventKind.FUNC_EXIT)
        assert len(entries) == len(exits) == fibmod.fib_call_count(6)
        assert all(r.location.function == "fib" for r in entries)

    def test_markers_and_thresholds(self):
        """Patched instrumentation drives the stop machinery too."""
        rt = mp.Runtime(1)
        with DynPatcher(rt) as patcher:
            patcher.patch_function(fibmod, "fib")
            rt.launch(fibmod.fib_program(10))
            rt.set_threshold(0, 20)
            report = rt.run_until_idle()
            assert report.outcome is mp.RunOutcome.STOPPED
            assert rt.procs[0].marker == 20
            rt.set_threshold(0, None)
            assert rt.resume().outcome is mp.RunOutcome.FINISHED

    def test_patch_module_filters(self):
        rt = mp.Runtime(1)
        with DynPatcher(rt) as patcher:
            records = patcher.patch_module(fibmod, only={"fib"})
            assert [r.name for r in records] == ["fib"]
            assert patcher.patch_count == 1
        rt.shutdown()

    def test_non_callable_rejected(self):
        rt = mp.Runtime(1)
        patcher = DynPatcher(rt)
        with pytest.raises(TypeError, match="not callable"):
            patcher.patch_function(fibmod, "TAG_FIB")
        rt.shutdown()

    def test_layered_patch_not_clobbered(self):
        """unpatch_all leaves a later layer's wrapper intact."""
        rt = mp.Runtime(1)
        original = fibmod.fib
        try:
            p1 = DynPatcher(rt)
            p1.patch_function(fibmod, "fib")
            layer1 = fibmod.fib
            p2 = DynPatcher(rt)
            p2.patch_function(fibmod, "fib")
            top = fibmod.fib
            assert p1.unpatch_all() == 0  # slot holds p2's wrapper: untouched
            assert fibmod.fib is top
            assert p2.unpatch_all() == 1  # peels back to layer 1's wrapper
            assert fibmod.fib is layer1
        finally:
            fibmod.fib = original  # p1 forgot its patch list; restore
            rt.shutdown()

    def test_restore_exact_original_after_nested_unpatch(self):
        """Unpatching in reverse layering order restores the original."""
        rt = mp.Runtime(1)
        original = fibmod.fib
        p1 = DynPatcher(rt)
        p1.patch_function(fibmod, "fib")
        p2 = DynPatcher(rt)
        p2.patch_function(fibmod, "fib")
        p2.unpatch_all()
        p1.unpatch_all()
        assert fibmod.fib is original
        rt.shutdown()
