"""The wrapper instrumentation library (PMPI method, Section 2.3)."""

from __future__ import annotations

import numpy as np

from repro import mp
from repro.apps import strassen as st
from repro.instrument import WrapperLibrary, lifecycle_wrapper
from repro.trace import EventKind, TraceRecorder


def traced_run(program, nprocs, **rt_kw):
    """Run a program under the wrapper library; returns (runtime, trace)."""
    rt = mp.Runtime(nprocs, **rt_kw)
    recorder = TraceRecorder(nprocs)
    lib = WrapperLibrary(rt, recorder)
    rt.run(program, target_wrappers=[lifecycle_wrapper(recorder)])
    rt.shutdown()
    del lib
    return rt, recorder.snapshot()


def pingpong(comm):
    if comm.rank == 0:
        comm.send(np.arange(3), dest=1, tag=5)
        comm.recv(source=1, tag=6)
    else:
        comm.recv(source=0, tag=5)
        comm.send("back", dest=0, tag=6)


class TestAutomaticCollection:
    def test_send_recv_records(self):
        _, tr = traced_run(pingpong, 2)
        sends = tr.of_kind(EventKind.SEND)
        recvs = tr.of_kind(EventKind.RECV)
        assert len(sends) == 2 and len(recvs) == 2
        pair_keys = {p.key for p in tr.message_pairs()}
        assert (0, 1, 5, 0) in pair_keys and (1, 0, 6, 0) in pair_keys

    def test_records_carry_markers_and_times(self):
        _, tr = traced_run(pingpong, 2)
        for r in tr:
            assert r.t1 >= r.t0
            assert r.marker >= 0
        # Markers strictly increase along each process's comm events.
        for p in range(2):
            markers = [r.marker for r in tr.by_proc(p) if r.is_message]
            assert markers == sorted(markers)
            assert len(set(markers)) == len(markers)

    def test_recv_records_point_to_send_site(self):
        """Click-a-message-line support: receive records carry the
        sending construct's location."""
        _, tr = traced_run(pingpong, 2)
        recv = tr.of_kind(EventKind.RECV)[0]
        assert recv.peer_location is not None
        assert recv.peer_location.filename.endswith("test_wrappers.py")
        assert recv.peer_time <= recv.t1

    def test_lifecycle_records(self):
        _, tr = traced_run(pingpong, 2)
        assert len(tr.of_kind(EventKind.PROC_START)) == 2
        assert len(tr.of_kind(EventKind.PROC_EXIT)) == 2

    def test_compute_records(self):
        def prog(comm):
            comm.compute(7.0, label="work")

        _, tr = traced_run(prog, 1)
        comp = tr.of_kind(EventKind.COMPUTE)
        assert len(comp) == 1
        assert comp[0].duration == 7.0
        assert comp[0].extra["label"] == "work"

    def test_collective_plus_constituents(self):
        def prog(comm):
            comm.bcast("x", root=0)

        _, tr = traced_run(prog, 3)
        assert len(tr.of_kind(EventKind.BCAST)) == 3  # one per rank
        assert len(tr.of_kind(EventKind.SEND)) == 2  # root's two sends
        assert len(tr.of_kind(EventKind.RECV)) == 2

    def test_wait_completion_normalized_to_recv(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=3)
            else:
                req = comm.irecv(source=0, tag=3)
                comm.wait(req)

        _, tr = traced_run(prog, 2)
        recvs = tr.of_kind(EventKind.RECV)
        assert len(recvs) == 1
        assert recvs[0].extra.get("via") == "wait"
        assert recvs[0].message_key() == (0, 1, 3, 0)

    def test_failed_iprobe_not_recorded(self):
        def prog(comm):
            comm.iprobe(source=0, tag=9)

        _, tr = traced_run(prog, 1)
        assert tr.of_kind(EventKind.IPROBE) == []

    def test_uninstall_stops_collection(self):
        rt = mp.Runtime(2)
        recorder = TraceRecorder(2)
        lib = WrapperLibrary(rt, recorder)
        lib.uninstall()
        rt.run(pingpong)
        assert len(recorder.snapshot()) == 0


class TestStrassenTraceShape:
    """Trace-level view of the Figure 3 run."""

    def test_correct_run_message_structure(self):
        cfg = st.StrassenConfig(n=8, nprocs=8)
        _, tr = traced_run(st.strassen_program(cfg), 8)
        # 14 operand messages + 7 results, all matched.
        assert len(tr.message_pairs()) == 21
        assert tr.unmatched_sends() == []
        counts = tr.recv_counts()
        assert all(counts[w] == 2 for w in range(1, 8))  # two operands each
        assert counts[0] == 7  # seven partial results

    def test_buggy_run_trace_diagnostics(self):
        cfg = st.StrassenConfig(n=8, nprocs=8, buggy=True)
        rt = mp.Runtime(8)
        recorder = TraceRecorder(8)
        WrapperLibrary(rt, recorder)
        rt.run(st.strassen_program(cfg), raise_errors=False)
        tr = recorder.snapshot()
        counts = tr.recv_counts()
        assert all(counts[w] == 2 for w in range(1, 7))
        assert counts[7] == 1  # the missing tick of Figure 6
        missed = tr.unmatched_sends()
        assert len(missed) == 1 and missed[0].tag == st.TAG_OPERAND_B
        rt.shutdown()

    def test_trace_deterministic(self):
        cfg = st.StrassenConfig(n=8, nprocs=4)
        _, tr1 = traced_run(st.strassen_program(cfg), 4)
        _, tr2 = traced_run(st.strassen_program(cfg), 4)
        assert [
            (r.proc, r.kind, r.t0, r.t1, r.marker) for r in tr1
        ] == [(r.proc, r.kind, r.t0, r.t1, r.marker) for r in tr2]
