"""Matching anomalies, deadlock detection, and message races."""

from __future__ import annotations


from repro import mp
from repro.analysis import (
    analyze_deadlock,
    analyze_matching,
    build_wait_graph,
    detect_races,
    explore_schedules,
    find_cycles,
    find_intertwined,
    matching_fingerprint,
    wait_chain,
)
from repro.apps import master_worker_program
from repro.apps import strassen as st
from repro.instrument import WrapperLibrary
from repro.trace import TraceRecorder
from tests.conftest import traced_run


def run_buggy_strassen():
    cfg = st.StrassenConfig(n=8, nprocs=8, buggy=True)
    rt = mp.Runtime(8)
    recorder = TraceRecorder(8)
    WrapperLibrary(rt, recorder)
    report = rt.run(st.strassen_program(cfg), raise_errors=False)
    trace = recorder.snapshot()
    waiting = list(report.waiting)
    rt.shutdown()
    return trace, waiting


class TestMatchingAnalysis:
    def test_clean_run(self):
        cfg = st.StrassenConfig(n=8, nprocs=8)
        _, tr = traced_run(st.strassen_program(cfg), 8)
        report = analyze_matching(tr)
        assert report.clean
        assert report.intertwined == []
        assert "no anomalies" in report.as_text()

    def test_buggy_run_missed_message(self):
        """The Figure 6 diagnosis: the stray send is paired with the
        starving worker 7."""
        trace, waiting = run_buggy_strassen()
        report = analyze_matching(trace, blocked=waiting)
        assert len(report.unmatched_sends) == 1
        assert len(report.missed) == 1
        missed = report.missed[0]
        assert missed.send.src == 0
        assert missed.starving.rank == 7
        assert "likely intended destination 7" in missed.describe()

    def test_intertwined_detection(self):
        """Same route, two tags, receive order inverted."""

        def prog(comm):
            if comm.rank == 0:
                comm.send("early", dest=1, tag=1)
                comm.send("late", dest=1, tag=2)
            else:
                comm.compute(1.0)
                got_late = comm.recv(source=0, tag=2)  # inverts send order
                got_early = comm.recv(source=0, tag=1)
                return (got_late, got_early)

        _, tr = traced_run(prog, 2)
        pairs = find_intertwined(tr)
        assert len(pairs) == 1
        assert pairs[0].route() == (0, 1)
        assert pairs[0].first_send.tag == 1

    def test_no_intertwining_in_fifo_traffic(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=1)
            else:
                for _ in range(5):
                    comm.recv(source=0, tag=1)

        _, tr = traced_run(prog, 2)
        assert find_intertwined(tr) == []


class TestDeadlockAnalysis:
    def test_cycle_found_in_buggy_strassen(self):
        trace, waiting = run_buggy_strassen()
        report = analyze_deadlock(waiting, nprocs=8, trace=trace)
        assert report.deadlocked
        assert report.cycles == [[0, 7]]
        assert report.involved_ranks() == {0, 7}
        assert report.missed  # cause diagnosis included
        text = report.as_text()
        assert "cycle: p0 -> p7 -> p0" in text

    def test_three_way_cycle(self):
        def prog(comm):
            comm.recv(source=(comm.rank + 1) % comm.size)

        rt = mp.Runtime(3)
        report = rt.run(prog, raise_errors=False)
        analysis = analyze_deadlock(report.waiting, nprocs=3)
        assert analysis.cycles == [[0, 1, 2]]
        rt.shutdown()

    def test_starvation_is_not_cycle(self):
        """A blocked process waiting on an exited one: no cycle."""

        def prog(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=9)

        rt = mp.Runtime(2)
        report = rt.run(prog, raise_errors=False)
        analysis = analyze_deadlock(report.waiting, nprocs=2)
        assert not analysis.deadlocked
        assert "starvation, not deadlock" in analysis.as_text()
        rt.shutdown()

    def test_wildcard_wait_edges(self):
        waits = [
            mp.WaitInfo(0, mp.WaitKind.RECV, mp.ANY_SOURCE, 1),
            mp.WaitInfo(1, mp.WaitKind.RECV, 0, 1),
        ]
        g = build_wait_graph(waits, nprocs=3)
        assert set(g.edges()) == {(0, 1), (1, 0)}
        assert find_cycles(g) == [[0, 1]]

    def test_wait_chain(self):
        waits = [
            mp.WaitInfo(0, mp.WaitKind.RECV, 1, 1),
            mp.WaitInfo(1, mp.WaitKind.RECV, 2, 1),
            mp.WaitInfo(2, mp.WaitKind.RECV, 0, 1),
        ]
        assert wait_chain(waits, 3, start=0) == [0, 1, 2, 0]

    def test_empty_report(self):
        analysis = analyze_deadlock([], nprocs=4)
        assert not analysis.deadlocked
        assert analysis.as_text() == "no blocked processes"


class TestRaceDetection:
    def test_master_worker_races_detected(self):
        _, tr = traced_run(master_worker_program(n_tasks=6), 4)
        races = detect_races(tr)
        assert races, "wildcard master should exhibit races"
        race = races[0]
        assert race.recv.proc == 0
        assert race.alternatives
        assert "race at p0" in race.describe()

    def test_deterministic_program_has_no_races(self):
        cfg = st.StrassenConfig(n=8, nprocs=4)
        _, tr = traced_run(st.strassen_program(cfg), 4)
        assert detect_races(tr) == []

    def test_explicit_recv_not_flagged_even_if_other_traffic(self):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=1)
                comm.recv(source=2, tag=1)
            else:
                comm.send(comm.rank, dest=0, tag=1)

        _, tr = traced_run(prog, 3)
        assert detect_races(tr) == []

    def test_explore_schedules_sees_alternative_matchings(self):
        """Under random schedules, the master/worker matching varies."""
        outcomes = explore_schedules(
            master_worker_program(n_tasks=8), 4, seeds=range(10)
        )
        assert sum(outcomes.values()) == 10
        assert len(outcomes) >= 2  # at least two distinct matchings seen

    def test_explore_schedules_deterministic_program(self):
        cfg = st.StrassenConfig(n=8, nprocs=4)
        outcomes = explore_schedules(st.strassen_program(cfg), 4, seeds=range(5))
        assert len(outcomes) == 1

    def test_fingerprint_stability(self):
        rt = mp.Runtime(4)
        rt.run(master_worker_program(n_tasks=5))
        fp1 = matching_fingerprint(rt.comm_log)
        rt2 = mp.Runtime(4)
        rt2.run(master_worker_program(n_tasks=5))
        assert fp1 == matching_fingerprint(rt2.comm_log)
