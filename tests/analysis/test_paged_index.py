"""The out-of-core paged index: window queries with bounded memory.

Contract: :class:`OutOfCoreIndex` answers ``window``/``seek_window``
identically to the fully-materialized :class:`HistoryIndex` (and to
``TraceFileReader.seek_window``) while holding at most ``cache_blocks``
decoded blocks resident, over plain, compressed, and sharded stores.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.history import HistoryIndex
from repro.analysis.paged import (
    DEFAULT_CACHE_BLOCKS,
    BlockCache,
    OutOfCoreIndex,
    PagedStats,
)
from repro.mp.datatypes import SourceLocation
from repro.trace import (
    EventKind,
    TraceFileError,
    TraceFileReader,
    TraceFileWriter,
    TraceRecord,
    TraceShardWriter,
)

NPROCS = 4
KINDS = list(EventKind)


def make_batch(seed: int, n: int) -> list[TraceRecord]:
    rng = random.Random(seed)
    out = []
    for i in range(n):
        t0 = round(rng.uniform(0, 100), 3)
        out.append(
            TraceRecord(
                index=i,
                proc=rng.randrange(NPROCS),
                kind=rng.choice(KINDS),
                t0=t0,
                t1=round(t0 + rng.uniform(0, 3), 3),
                marker=i + 1,
                location=SourceLocation("f.py", i % 17, "fn"),
            )
        )
    return out


@pytest.fixture(scope="module")
def batch():
    return make_batch(0, 1500)


@pytest.fixture(scope="module")
def stores(batch, tmp_path_factory):
    """(plain, compressed, sharded) paths holding the same batch."""
    tmp = tmp_path_factory.mktemp("paged")
    plain = tmp / "plain.trace"
    packed = tmp / "packed.trace"
    sharded = tmp / "sharded.trace"
    with TraceFileWriter(plain, NPROCS, index_block=64) as w:
        for rec in batch:
            w.write(rec)
    with TraceFileWriter(packed, NPROCS, index_block=64,
                         compression="zlib") as w:
        for rec in batch:
            w.write(rec)
    with TraceShardWriter(sharded, NPROCS, index_block=64,
                          compression="zlib") as w:
        for rec in batch:
            w.write(rec)
    return plain, packed, sharded


WINDOWS = [(0.0, 100.0), (10.0, 20.0), (50.0, 50.5), (99.0, 120.0),
           (200.0, 300.0), (30.0, 10.0)]


class TestOutOfCoreIndex:
    @pytest.mark.parametrize("store", [0, 1, 2],
                             ids=["plain", "compressed", "sharded"])
    def test_window_equals_in_memory_index(self, batch, stores, store):
        full = HistoryIndex(batch, nprocs=NPROCS)
        paged = OutOfCoreIndex(TraceFileReader(stores[store]),
                               cache_blocks=4)
        assert len(paged) == len(batch)
        assert paged.span == full.span
        for lo, hi in WINDOWS:
            assert paged.window(lo, hi) == full.window(lo, hi)

    @pytest.mark.parametrize("store", [1, 2], ids=["compressed", "sharded"])
    def test_seek_window_with_procs_equals_reader(self, stores, store):
        reader = TraceFileReader(stores[store])
        paged = OutOfCoreIndex(TraceFileReader(stores[store]),
                               cache_blocks=4)
        for procs in [None, {0}, {1, 3}, set()]:
            for lo, hi in WINDOWS:
                assert paged.seek_window(lo, hi, procs) == reader.seek_window(
                    lo, hi, procs
                )

    def test_window_columns_agrees_with_records(self, stores):
        paged = OutOfCoreIndex(TraceFileReader(stores[1]), cache_blocks=4)
        cols = paged.window_columns(10.0, 30.0, {0, 2})
        assert cols.to_records() == paged.seek_window(10.0, 30.0, {0, 2})
        assert len(paged.window_columns(5.0, 1.0)) == 0

    def test_resident_blocks_stay_bounded(self, stores):
        paged = OutOfCoreIndex(TraceFileReader(stores[0]), cache_blocks=3)
        rng = random.Random(1)
        for _ in range(25):
            lo = rng.uniform(0, 90)
            paged.window(lo, lo + rng.uniform(0, 20))
        assert paged.cached_blocks <= 3
        stats = paged.stats()
        assert stats.evictions > 0
        assert stats.block_loads + stats.cache_hits > 0
        # the full trace was never resident
        assert paged.cached_blocks < paged.nblocks

    def test_cache_bytes_bound(self, stores):
        paged = OutOfCoreIndex(
            TraceFileReader(stores[0]), cache_blocks=10_000,
            cache_bytes=50_000,
        )
        paged.window(0.0, 100.0)
        assert paged.resident_bytes <= 50_000 or paged.cached_blocks == 1

    def test_repeat_queries_hit_the_cache(self, stores):
        paged = OutOfCoreIndex(TraceFileReader(stores[1]), cache_blocks=64)
        paged.window(10.0, 12.0)
        loads = paged.stats().block_loads
        paged.window(10.0, 12.0)
        after = paged.stats()
        assert after.block_loads == loads
        assert after.cache_hits > 0
        assert 0.0 < after.hit_rate <= 1.0

    def test_from_file_paged_returns_out_of_core(self, stores):
        reader = TraceFileReader(stores[2])
        paged = HistoryIndex.from_file(reader, paged=True, cache_blocks=5)
        assert isinstance(paged, OutOfCoreIndex)
        assert paged.nprocs == NPROCS
        with pytest.raises(ValueError, match="paged=True"):
            HistoryIndex.from_file(reader, cache_blocks=5)

    def test_footerless_file_needs_reindex(self, stores, tmp_path):
        raw = stores[0].read_bytes()
        cut = tmp_path / "cut.trace"
        cut.write_bytes(raw[: raw.rfind(b'{"__trace_index__"')])
        with pytest.raises(TraceFileError, match="reindex"):
            OutOfCoreIndex(TraceFileReader(cut))

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "e.trace"
        TraceFileWriter(path, NPROCS).close()
        paged = OutOfCoreIndex(TraceFileReader(path))
        assert len(paged) == 0
        assert paged.span == (0.0, 0.0)
        assert paged.window(0.0, 10.0) == []


class TestBlockCache:
    def test_lru_eviction_order(self):
        from repro.trace.columnar import ColumnBlock

        cache = BlockCache(max_blocks=2)
        blocks = {
            key: ColumnBlock.from_records(
                [TraceRecord(index=i, proc=0, kind=EventKind.COMPUTE,
                             t0=0.0, t1=0.0, marker=i)]
            )
            for i, key in enumerate(("a", "b", "c"))
        }
        cache.put("a", blocks["a"])
        cache.put("b", blocks["b"])
        assert cache.get("a") is blocks["a"]  # refresh: b is now LRU
        cache.put("c", blocks["c"])
        assert cache.get("b") is None
        assert cache.get("a") is blocks["a"]
        assert cache.evictions == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BlockCache(max_blocks=0)

    def test_stats_snapshot_is_independent(self):
        stats = PagedStats(block_loads=2, cache_hits=6)
        snap = stats.snapshot()
        stats.block_loads = 99
        assert snap.block_loads == 2
        assert snap.hit_rate == 0.75
        assert PagedStats().hit_rate == 0.0

    def test_default_capacity_constant(self):
        assert BlockCache().max_blocks == DEFAULT_CACHE_BLOCKS
