"""The parallel shard pipeline's read side: background readahead and
process-parallel index builds.

Contracts:

* Readahead only ever *adds* cached blocks -- query results, the
  hit-rate formula, and the LRU bound are unchanged, and on a
  sequential window sweep the prefetcher measurably raises the hit
  rate over the same sweep without it.
* ``BlockCache`` plus the single-flight loader survive concurrent
  window queries and the prefetcher without corrupting the LRU or
  decoding any block twice while cached.
* ``HistoryIndex.from_file(parallel=N)`` is *exactly* the serial
  build: same columns, same records, same derived analyses.
"""

from __future__ import annotations

import os
import random
import tempfile
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.analysis.history import HistoryIndex
from repro.analysis.paged import (
    DEFAULT_PREFETCH_BLOCKS,
    NO_PREFETCH_ENV_VAR,
    OutOfCoreIndex,
    prefetch_enabled,
)
from repro.mp.datatypes import SourceLocation
from repro.trace import (
    EventKind,
    TraceFileReader,
    TraceFileWriter,
    TraceShardWriter,
)
from repro.trace.tracefile import read_columns_parallel

NPROCS = 4
KINDS = list(EventKind)

no_prefetch_env = pytest.mark.skipif(
    bool(os.environ.get(NO_PREFETCH_ENV_VAR)),
    reason=f"{NO_PREFETCH_ENV_VAR} is set: readahead is disabled",
)


def make_batch(seed: int, n: int, sequential_time: bool = False):
    from repro.trace import TraceRecord

    rng = random.Random(seed)
    out = []
    for i in range(n):
        t0 = i * 0.01 if sequential_time else round(rng.uniform(0, 100), 3)
        out.append(
            TraceRecord(
                index=i,
                proc=rng.randrange(NPROCS),
                kind=rng.choice(KINDS),
                t0=round(t0, 3),
                t1=round(t0 + 0.005, 3),
                marker=i + 1,
                location=SourceLocation("f.py", i % 11, "fn"),
            )
        )
    return out


def write_plain(path, batch, index_block=64):
    with TraceFileWriter(path, NPROCS, index_block=index_block) as w:
        for rec in batch:
            w.write(rec)
    return path


# ----------------------------------------------------------------------
# readahead behavior
# ----------------------------------------------------------------------
@no_prefetch_env
class TestPrefetch:
    @pytest.fixture()
    def store(self, tmp_path):
        # sequential time: block k spans [k*0.64, (k+1)*0.64) -- the
        # prefetcher's best case, a debugger panning forward in time
        return write_plain(tmp_path / "seq.trace", make_batch(3, 2000, True))

    def sweep(self, paged, steps=10, width=1.2):
        for k in range(steps):
            lo = k * width
            paged.seek_window(lo, lo + width)
            assert paged.wait_prefetch(10.0)

    def test_sequential_sweep_hits_readahead(self, store):
        paged = OutOfCoreIndex(
            TraceFileReader(store), cache_blocks=16, prefetch_blocks=4
        )
        self.sweep(paged)
        stats = paged.stats()
        assert stats.prefetch_loads > 0
        assert stats.prefetch_hits > 0
        # a prefetch hit is a cache hit by definition
        assert stats.prefetch_hits <= stats.cache_hits
        paged.close()

    def test_readahead_beats_no_readahead_on_same_sweep(self, store):
        with_pf = OutOfCoreIndex(
            TraceFileReader(store), cache_blocks=16, prefetch_blocks=4
        )
        without = OutOfCoreIndex(
            TraceFileReader(store), cache_blocks=16, prefetch_blocks=0
        )
        self.sweep(with_pf)
        self.sweep(without)
        assert with_pf.stats().hit_rate > without.stats().hit_rate
        with_pf.close()
        without.close()

    def test_results_identical_with_and_without_readahead(self, store):
        with_pf = OutOfCoreIndex(
            TraceFileReader(store), cache_blocks=8, prefetch_blocks=4
        )
        without = OutOfCoreIndex(
            TraceFileReader(store), cache_blocks=8, prefetch_blocks=0
        )
        for lo, hi in [(0.0, 3.0), (5.5, 9.0), (2.0, 2.5), (15.0, 19.9)]:
            a = with_pf.seek_window(lo, hi)
            b = without.seek_window(lo, hi)
            assert [r.index for r in a] == [r.index for r in b]
        with_pf.close()
        without.close()

    def test_prefetch_bounded_by_cache(self, store):
        paged = OutOfCoreIndex(
            TraceFileReader(store), cache_blocks=3, prefetch_blocks=100
        )
        # readahead must never be allowed to churn the whole LRU
        assert paged.prefetch_blocks <= 2
        self.sweep(paged, steps=5)
        assert paged.cached_blocks <= 3
        paged.close()

    def test_negative_prefetch_rejected(self, store):
        with pytest.raises(ValueError, match="prefetch_blocks"):
            OutOfCoreIndex(TraceFileReader(store), prefetch_blocks=-1)

    def test_stats_text_reports_readahead(self, store):
        paged = OutOfCoreIndex(
            TraceFileReader(store), cache_blocks=16, prefetch_blocks=4
        )
        self.sweep(paged)
        text = paged.stats().as_text()
        assert "readahead" in text
        assert "prefetch loads" in text
        paged.close()


class TestPrefetchEnvVar:
    def test_env_var_wins_over_argument(self, tmp_path, monkeypatch):
        store = write_plain(tmp_path / "t.trace", make_batch(5, 800, True))
        monkeypatch.setenv(NO_PREFETCH_ENV_VAR, "1")
        assert not prefetch_enabled()
        paged = OutOfCoreIndex(
            TraceFileReader(store), cache_blocks=8, prefetch_blocks=4
        )
        assert paged.prefetch_blocks == 0
        paged.seek_window(0.0, 2.0)
        paged.wait_prefetch(1.0)
        assert paged.stats().prefetch_loads == 0
        paged.close()

    def test_default_depth_applies_when_enabled(self, tmp_path, monkeypatch):
        store = write_plain(tmp_path / "t.trace", make_batch(5, 800, True))
        monkeypatch.delenv(NO_PREFETCH_ENV_VAR, raising=False)
        paged = OutOfCoreIndex(TraceFileReader(store), cache_blocks=32)
        assert paged.prefetch_blocks == DEFAULT_PREFETCH_BLOCKS
        paged.close()


# ----------------------------------------------------------------------
# cache thread-safety under concurrent queries + readahead
# ----------------------------------------------------------------------
class TestConcurrentAccess:
    def _counting_reader(self, path):
        reader = TraceFileReader(path)
        counts: dict = {}
        lock = threading.Lock()
        orig = reader.load_block

        def counting_load(ref):
            key = (ref.shard, ref.entry.offset)
            with lock:
                counts[key] = counts.get(key, 0) + 1
            return orig(ref)

        reader.load_block = counting_load  # type: ignore[method-assign]
        return reader, counts

    def test_no_block_decoded_twice_when_cache_fits(self, tmp_path):
        store = write_plain(
            tmp_path / "c.trace", make_batch(11, 3000, True)
        )
        reader, counts = self._counting_reader(store)
        paged = OutOfCoreIndex(reader, cache_blocks=256, prefetch_blocks=4)
        nthreads = 6
        barrier = threading.Barrier(nthreads)
        errors: list[BaseException] = []

        def worker(tid: int) -> None:
            try:
                barrier.wait()
                for k in range(12):
                    lo = ((tid + k) % 12) * 2.5
                    paged.seek_window(lo, lo + 2.5)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(nthreads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        paged.wait_prefetch(10.0)
        paged.close()
        assert not errors
        # cache never evicts (256 >> nblocks), so the single-flight
        # loader must have decoded every touched block exactly once
        assert counts and max(counts.values()) == 1
        stats = paged.stats()
        assert stats.block_loads + stats.prefetch_loads == len(counts)

    def test_lru_bound_holds_under_contention(self, tmp_path):
        store = write_plain(
            tmp_path / "s.trace", make_batch(13, 3000, True)
        )
        reader = TraceFileReader(store)
        paged = OutOfCoreIndex(reader, cache_blocks=4, prefetch_blocks=2)
        expected = {}
        plain = TraceFileReader(store)
        windows = [(k * 2.0, k * 2.0 + 2.0) for k in range(15)]
        for lo, hi in windows:
            expected[(lo, hi)] = [r.index for r in plain.seek_window(lo, hi)]
        nthreads = 5
        barrier = threading.Barrier(nthreads)
        errors: list[BaseException] = []

        def worker(tid: int) -> None:
            try:
                barrier.wait()
                for i in range(len(windows)):
                    lo, hi = windows[(tid + i) % len(windows)]
                    got = [r.index for r in paged.seek_window(lo, hi)]
                    assert got == expected[(lo, hi)]
                    assert paged.cached_blocks <= 4
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(nthreads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        paged.close()
        assert not errors
        assert paged.cached_blocks <= 4
        assert paged.resident_bytes >= 0


# ----------------------------------------------------------------------
# process-parallel builds == serial builds, exactly
# ----------------------------------------------------------------------
class TestParallelBuild:
    def _write_sharded(self, tmp, batch, shards=3):
        path = tmp / "p.trace"
        with TraceShardWriter(
            path, NPROCS, index_block=32, shards=shards, by="hash"
        ) as w:
            for rec in batch:
                w.write(rec)
        return path

    def assert_equal_indexes(self, serial, par):
        assert len(serial) == len(par)
        for name in serial.columns:
            assert np.array_equal(serial.column(name), par.column(name)), name
        assert list(serial.records) == list(par.records)
        assert serial.span == par.span
        assert serial.message_pairs() == par.message_pairs()

    def test_parallel_build_matches_serial(self, tmp_path):
        batch = make_batch(21, 600)
        path = self._write_sharded(tmp_path, batch)
        serial = HistoryIndex.from_file(TraceFileReader(path))
        par = HistoryIndex.from_file(TraceFileReader(path), parallel=2)
        self.assert_equal_indexes(serial, par)
        stats = par.stats()
        assert stats.parallel_shards >= 2
        assert stats.parallel_workers == 2
        assert "parallel build" in stats.as_text()

    def test_parallel_single_file_chunked(self, tmp_path):
        # a single v3 file with enough index blocks also fans out
        path = write_plain(
            tmp_path / "one.trace", make_batch(23, 800), index_block=32
        )
        serial = HistoryIndex.from_file(TraceFileReader(path))
        par = HistoryIndex.from_file(TraceFileReader(path), parallel=2)
        self.assert_equal_indexes(serial, par)

    def test_parallel_falls_back_below_threshold(self, tmp_path):
        # one populated shard -> nothing to fan out -> serial path
        path = write_plain(tmp_path / "tiny.trace", make_batch(29, 40))
        reader = TraceFileReader(path)
        assert read_columns_parallel(reader, 1) is None
        idx = HistoryIndex.from_file(reader, parallel=1)
        assert idx.stats().parallel_shards == 0
        assert len(idx) == 40

    def test_parallel_excludes_paged(self, tmp_path):
        path = write_plain(tmp_path / "x.trace", make_batch(31, 40))
        with pytest.raises(ValueError, match="parallel"):
            HistoryIndex.from_file(
                TraceFileReader(path), paged=True, parallel=2
            )

    def test_prefetch_arg_requires_paged(self, tmp_path):
        path = write_plain(tmp_path / "y.trace", make_batch(31, 40))
        with pytest.raises(ValueError, match="prefetch"):
            HistoryIndex.from_file(TraceFileReader(path), prefetch_blocks=2)

    @settings(max_examples=6, deadline=None)
    @given(seed=hst.integers(0, 10**6), n=hst.integers(40, 250))
    def test_property_parallel_equals_serial(self, seed, n):
        batch = make_batch(seed, n)
        with tempfile.TemporaryDirectory() as tmp:
            path = self._write_sharded(Path(tmp), batch, shards=2)
            serial = HistoryIndex.from_file(TraceFileReader(path))
            par = HistoryIndex.from_file(TraceFileReader(path), parallel=2)
            self.assert_equal_indexes(serial, par)
