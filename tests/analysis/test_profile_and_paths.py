"""Trace profiles, critical paths, and race steering."""

from __future__ import annotations

import pytest

from repro import mp
from repro.analysis import (
    communication_matrix,
    critical_path,
    detect_races,
    function_profile,
    function_profile_text,
    matching_fingerprint,
    slack_per_process,
    steer_to_alternative,
    time_breakdown,
    time_breakdown_text,
)
from repro.apps import fibonacci as fibmod
from repro.apps import master_worker_program
from repro.apps import strassen as st
from tests.conftest import traced_run


@pytest.fixture(scope="module")
def strassen_trace():
    cfg = st.StrassenConfig(n=8, nprocs=4)
    _, tr = traced_run(st.strassen_program(cfg), 4)
    return tr


class TestTimeBreakdown:
    def test_totals_cover_event_durations(self, strassen_trace):
        rows = time_breakdown(strassen_trace)
        assert len(rows) == 4
        for row in rows:
            assert row.total >= 0.0
        # The master computes (operand prep + combine) and receives.
        master = rows[0]
        assert master.compute > 0
        assert master.recv_blocked + master.recv_overhead > 0

    def test_blocked_vs_overhead_split(self):
        """A receiver that arrives early logs mostly blocked time."""

        def prog(comm):
            if comm.rank == 0:
                comm.compute(100.0)
                comm.send("late", dest=1)
            else:
                comm.recv(source=0)  # waits ~100 time units

        _, tr = traced_run(prog, 2)
        row = time_breakdown(tr)[1]
        assert row.recv_blocked > 50.0
        assert row.recv_blocked > row.recv_overhead

    def test_text_rendering(self, strassen_trace):
        text = time_breakdown_text(strassen_trace)
        assert "recv-wait" in text and text.count("\n") == 4


class TestCommMatrix:
    def test_strassen_star(self, strassen_trace):
        mat = communication_matrix(strassen_trace)
        msgs, elems = mat.totals()
        assert msgs == 21
        assert elems > 0
        # Star pattern: nothing flows between workers.
        for s in range(1, 4):
            for d in range(1, 4):
                assert mat.counts[s, d] == 0
        # Operands outweigh results: 0->w carries two matrices.
        for w in range(1, 4):
            assert mat.counts[0, w] >= 2

    def test_user_only_excludes_collectives(self):
        def prog(comm):
            comm.bcast("x", root=0)
            if comm.rank == 0:
                comm.send("user", dest=1, tag=1)
            elif comm.rank == 1:
                comm.recv(source=0, tag=1)

        _, tr = traced_run(prog, 3)
        user = communication_matrix(tr, user_only=True)
        every = communication_matrix(tr, user_only=False)
        assert user.totals()[0] == 1
        assert every.totals()[0] == 3  # + two bcast legs

    def test_busiest_route(self, strassen_trace):
        src, dst = communication_matrix(strassen_trace).busiest_route()
        assert src == 0 and dst in (1, 2, 3)

    def test_text(self, strassen_trace):
        assert "total: 21 messages" in communication_matrix(strassen_trace).as_text()


class TestFunctionProfile:
    def test_fib_profile(self):
        _, tr = traced_run(fibmod.fib_program(8), 1, functions=[fibmod.fib])
        stats = function_profile(tr)
        assert stats["fib"].calls == fibmod.fib_call_count(8)
        assert stats["fib"].inclusive >= stats["fib"].exclusive >= 0
        assert "fib" in function_profile_text(tr)

    def test_exclusive_excludes_children(self):
        def parent(comm):
            child(comm)
            child(comm)

        def child(comm):
            comm.compute(10.0)

        def prog(comm):
            parent(comm)

        _, tr = traced_run(prog, 1, functions=[parent, child])
        stats = function_profile(tr)
        assert stats["child"].calls == 2
        assert stats["child"].inclusive == pytest.approx(20.0, abs=1.0)
        # Parent's exclusive time is tiny: all its time is in children.
        assert stats["parent"].exclusive < stats["parent"].inclusive / 2

    def test_empty_profile_text(self, strassen_trace):
        assert "no function records" in function_profile_text(strassen_trace)


class TestCriticalPath:
    def test_fully_serial_pipeline(self):
        """A pure pipeline is its own critical path: dominance ~ 1."""

        def prog(comm):
            if comm.rank > 0:
                comm.recv(source=comm.rank - 1)
            comm.compute(10.0)
            if comm.rank < comm.size - 1:
                comm.send("t", dest=comm.rank + 1)

        _, tr = traced_run(prog, 4)
        cp = critical_path(tr)
        assert cp.length > 0
        assert cp.hops() >= 3  # crosses every pipeline stage
        assert cp.dominance > 0.7

    def test_embarrassingly_parallel_low_dominance(self):
        def prog(comm):
            comm.compute(10.0)

        _, tr = traced_run(prog, 4)
        cp = critical_path(tr)
        # Only one process's work can be on the path.
        assert cp.records and all(r.proc == cp.records[0].proc for r in cp.records)

    def test_path_is_causal_chain(self, strassen_trace):
        from repro.analysis import compute_causal_order

        cp = critical_path(strassen_trace)
        order = compute_causal_order(strassen_trace)
        for a, b in zip(cp.records, cp.records[1:]):
            assert order.happens_before(a.index, b.index)

    def test_slack(self):
        def prog(comm):
            comm.compute(100.0 if comm.rank == 0 else 1.0)
            comm.barrier()

        _, tr = traced_run(prog, 3)
        slack = slack_per_process(tr)
        # The heavy rank has the least slack.
        assert slack[0] < slack[1] and slack[0] < slack[2]

    def test_empty_trace(self):
        from repro.trace import Trace

        cp = critical_path(Trace([], 2))
        assert cp.length == 0.0 and cp.records == []

    def test_as_text(self, strassen_trace):
        text = critical_path(strassen_trace).as_text(limit=10)
        assert "critical path" in text and "message hops" in text


class TestRaceSteering:
    def test_steered_replay_delivers_alternative(self):
        program = master_worker_program(n_tasks=6)
        rt = mp.Runtime(4)
        from repro.instrument import WrapperLibrary
        from repro.trace import TraceRecorder

        recorder = TraceRecorder(4)
        WrapperLibrary(rt, recorder)
        rt.run(program)
        rt.shutdown()
        trace = recorder.snapshot()

        races = detect_races(trace)
        assert races
        race = races[0]
        alternative = race.alternatives[0]
        steered = steer_to_alternative(rt.comm_log, trace, race, alternative)

        rt2 = mp.Runtime(4, replay_log=steered)
        recorder2 = TraceRecorder(4)
        WrapperLibrary(rt2, recorder2)
        rt2.run(program)
        rt2.shutdown()
        trace2 = recorder2.snapshot()

        # The racing receive (same post position) now matched the
        # alternative message.
        recv2 = [
            r for r in trace2.by_proc(race.recv.proc)
            if r.is_recv and r.marker == race.recv.marker
        ]
        assert recv2, "steered run reaches the same receive"
        assert recv2[0].message_key() == alternative.message_key()
        # The program still completes with the same task results.
        assert rt2.results()[0] == rt.results()[0]
        # And the matchings genuinely differ.
        assert matching_fingerprint(rt.comm_log) != matching_fingerprint(
            rt2.comm_log
        )

    def test_invalid_alternative_rejected(self):
        program = master_worker_program(n_tasks=4)
        rt = mp.Runtime(3)
        from repro.instrument import WrapperLibrary
        from repro.trace import TraceRecorder

        recorder = TraceRecorder(3)
        WrapperLibrary(rt, recorder)
        rt.run(program)
        rt.shutdown()
        trace = recorder.snapshot()
        races = detect_races(trace)
        assert races
        not_an_alt = races[0].matched_send
        with pytest.raises(ValueError, match="not one of the race"):
            steer_to_alternative(rt.comm_log, trace, races[0], not_an_alt)
