"""Race-engine parity, steering edge cases, and sweep hygiene.

Regression tests for the explorer-adjacent bugfixes: python/numpy race
kernel agreement on tag-only wildcards, the forcing-log misalignment
check, unsteerable alternatives, the marker-extended fingerprint, and
``explore_schedules`` backend pass-through / crash-path shutdown.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import mp
from repro.analysis import detect_races, explore_schedules, matching_fingerprint
from repro.analysis.races import UnsteerableAlternativeError, steer_to_alternative
from repro.apps import master_worker_program
from repro.mp.datatypes import ANY_SOURCE, ANY_TAG
from tests.conftest import traced_run


def tag_wildcard_program(comm):
    """Tag-only wildcard receives: rank 1 takes two differently-tagged
    messages from rank 0 with ``ANY_TAG``."""
    if comm.rank == 0:
        comm.send("early", dest=1, tag=1)
        comm.send("late", dest=1, tag=2)
    else:
        a = comm.recv(source=0, tag=ANY_TAG)
        b = comm.recv(source=0, tag=ANY_TAG)
        return (a, b)


def two_source_program(comm):
    """Two ``ANY_SOURCE`` receives fed by two senders: the second
    receive's alternative is exactly the first receive's message."""
    if comm.rank == 0:
        a = comm.recv(source=ANY_SOURCE, tag=7)
        b = comm.recv(source=ANY_SOURCE, tag=7)
        return (a, b)
    comm.send(comm.rank, dest=0, tag=7)


def race_shape(races):
    """Engine-comparable summary: (recv, matched, sorted alternatives)."""
    return [
        (
            r.recv.index,
            r.matched_send.index,
            tuple(sorted(a.index for a in r.alternatives)),
        )
        for r in races
    ]


class TestEngineParity:
    @pytest.mark.parametrize("include_tag", [True, False])
    def test_tag_only_wildcards(self, include_tag):
        _, tr = traced_run(tag_wildcard_program, 2)
        py = detect_races(tr, engine="python", include_tag_wildcards=include_tag)
        np_ = detect_races(tr, engine="numpy", include_tag_wildcards=include_tag)
        assert race_shape(py) == race_shape(np_)
        if include_tag:
            # Both ANY_TAG receives race: the other tag's send is causally
            # concurrent with each receive.
            assert len(py) == 2
        else:
            # posted_src is concrete, so excluding tag wildcards must
            # drop these races entirely -- in BOTH engines.
            assert py == []

    @pytest.mark.parametrize("include_tag", [True, False])
    def test_master_worker(self, include_tag):
        _, tr = traced_run(master_worker_program(n_tasks=8), 4)
        py = detect_races(tr, engine="python", include_tag_wildcards=include_tag)
        np_ = detect_races(tr, engine="numpy", include_tag_wildcards=include_tag)
        assert race_shape(py) == race_shape(np_)
        assert py, "the wildcard master always races"


class TestSteering:
    def base_run(self):
        rt, tr = traced_run(two_source_program, 3)
        return rt, tr, detect_races(tr)

    def test_unsteerable_alternative_detected(self):
        """Steering the *second* receive to the message the first already
        consumed would force one envelope at two receives; that candidate
        must be rejected, not silently turned into a deadlocking log."""
        rt, tr, races = self.base_run()
        assert len(races) == 2
        first, second = sorted(races, key=lambda r: r.recv.marker)
        with pytest.raises(UnsteerableAlternativeError, match="already delivered"):
            steer_to_alternative(rt.comm_log, tr, second, second.alternatives[0])
        # ...and it is a ValueError, so pre-existing callers still catch it.
        assert issubclass(UnsteerableAlternativeError, ValueError)

    def test_steerable_alternative_replays(self):
        """The first receive has no forced prefix; steering it swaps the
        arrival order and the replay observes the swap."""
        rt, tr, races = self.base_run()
        first = min(races, key=lambda r: r.recv.marker)
        steered = steer_to_alternative(rt.comm_log, tr, first, first.alternatives[0])
        rt2 = mp.Runtime(3, replay_log=steered)
        rt2.run(two_source_program)
        results = rt2.results()
        rt2.shutdown()
        base_a, base_b = rt.results()[0]
        assert results[0] == (base_b, base_a)

    def test_misaligned_log_rejected(self):
        """A base log with receive matchings the trace doesn't have must
        fail loudly instead of silently dropping entries."""
        rt, tr, races = self.base_run()
        mangled = mp.CommLog.from_jsonable(rt.comm_log.to_jsonable())
        posts = [post for (r, post) in mangled.recv_matches if r == 0]
        spare = max(posts) + 1
        env = next(iter(mangled.recv_matches.values()))
        mangled.recv_matches[(0, spare)] = env
        with pytest.raises(ValueError, match="misalignment on rank 0"):
            steer_to_alternative(mangled, tr, races[0], races[0].alternatives[0])

    def test_fingerprint_marker_extension(self):
        rt, tr, races = self.base_run()
        plain = matching_fingerprint(rt.comm_log)
        marked = matching_fingerprint(rt.comm_log, markers={0: 3})
        assert plain != marked
        assert marked[:-1] == plain  # the matching part is unchanged
        assert marked[-1] == ("markers", (0, 3))
        # Empty markers keep the pre-marker fingerprint.
        assert matching_fingerprint(rt.comm_log, markers={}) == plain


class TestExploreSchedules:
    def test_backend_pass_through(self):
        outcomes = explore_schedules(
            master_worker_program(n_tasks=8),
            4,
            seeds=range(4),
            backend="simtime",
        )
        assert sum(outcomes.values()) == 4

    def test_crash_still_shuts_down(self):
        """A schedule that raises must not leak execution threads."""

        def bad(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.recv(source=1)

        before = threading.active_count()
        with pytest.raises(RuntimeError, match="boom"):
            explore_schedules(bad, 2, seeds=range(2))
        deadline = time.time() + 5.0
        while threading.active_count() > before and time.time() < deadline:
            time.sleep(0.01)
        assert threading.active_count() <= before
