"""Vector clocks, happens-before, and frontiers."""

from __future__ import annotations

import pytest

from repro.analysis import (
    analyze_frontiers,
    check_trace_causality,
    compute_causal_order,
    is_consistent_frontier,
)
from repro.apps import LUConfig, lu_program
from repro.apps import strassen as st
from tests.conftest import traced_run


@pytest.fixture(scope="module")
def pipeline():
    """3-rank pipeline 0 -> 1 -> 2 with local compute around each hop."""

    def prog(comm):
        if comm.rank == 0:
            comm.compute(1.0)
            comm.send("x", dest=1)
            comm.compute(1.0)
        elif comm.rank == 1:
            comm.recv(source=0)
            comm.compute(1.0)
            comm.send("y", dest=2)
        else:
            comm.compute(1.0)
            comm.recv(source=1)

    _, tr = traced_run(prog, 3)
    return tr, compute_causal_order(tr)


class TestHappensBefore:
    def test_program_order(self, pipeline):
        tr, order = pipeline
        rows = tr.by_proc(0)
        for earlier, later in zip(rows, rows[1:]):
            assert order.happens_before(earlier.index, later.index)
            assert not order.happens_before(later.index, earlier.index)

    def test_message_order(self, pipeline):
        tr, order = pipeline
        for pair in tr.message_pairs():
            assert order.happens_before(pair.send.index, pair.recv.index)

    def test_transitivity_across_hops(self, pipeline):
        tr, order = pipeline
        send0 = next(r for r in tr if r.is_send and r.proc == 0)
        recv2 = next(r for r in tr if r.is_recv and r.proc == 2)
        assert order.happens_before(send0.index, recv2.index)

    def test_concurrent_events(self, pipeline):
        tr, order = pipeline
        # p0's first compute and p2's first compute are causally unrelated.
        c0 = tr.by_proc(0)[0]
        c2 = tr.by_proc(2)[0]
        assert order.concurrent(c0.index, c2.index)

    def test_not_reflexive(self, pipeline):
        tr, order = pipeline
        assert not order.happens_before(0, 0)
        assert not order.concurrent(0, 0)

    def test_past_future_partition(self, pipeline):
        tr, order = pipeline
        recv1 = next(r for r in tr if r.is_recv and r.proc == 1)
        e = recv1.index
        past = set(order.past(e))
        future = set(order.future(e))
        conc = set(order.concurrency_region(e))
        assert past.isdisjoint(future)
        assert conc.isdisjoint(past | future)
        assert past | future | conc | {e} == set(range(len(tr)))

    def test_causality_invariant_holds(self, pipeline):
        tr, _ = pipeline
        assert check_trace_causality(tr) is None


class TestFrontiers:
    @pytest.fixture(scope="class")
    def lu_analysis(self):
        cfg = LUConfig(grid=16, nprocs=8, sweeps=3)
        _, tr = traced_run(lu_program(cfg), 8)
        order = compute_causal_order(tr)
        # Pick a mid-trace receive on a middle rank (the Figure 8 click).
        target = [r for r in tr.by_proc(4) if r.is_recv][2]
        return tr, order, analyze_frontiers(tr, target.index, order)

    def test_past_frontier_consistent_inclusively(self, lu_analysis):
        tr, order, fa = lu_analysis
        assert is_consistent_frontier(
            tr, fa.past_frontier.indexes(), order, inclusive=True
        )

    def test_future_frontier_consistent_exclusively(self, lu_analysis):
        """Stopping just BEFORE each earliest-future event is a legal
        cut (the future stopline of Section 4.1)."""
        tr, order, fa = lu_analysis
        assert is_consistent_frontier(
            tr, fa.future_frontier.indexes(), order, inclusive=False
        )

    def test_past_before_future_per_proc(self, lu_analysis):
        _, _, fa = lu_analysis
        for p, past_rec in fa.past_frontier.events.items():
            fut_rec = fa.future_frontier.event(p)
            if past_rec is not None and fut_rec is not None:
                assert past_rec.t0 <= fut_rec.t1
                assert past_rec.marker <= fut_rec.marker

    def test_frontier_members_related_to_event(self, lu_analysis):
        _, order, fa = lu_analysis
        e = fa.event.index
        for rec in fa.past_frontier.events.values():
            if rec is not None:
                assert order.happens_before(rec.index, e)
        for rec in fa.future_frontier.events.values():
            if rec is not None:
                assert order.happens_before(e, rec.index)

    def test_concurrency_region_wide_for_pipeline(self, lu_analysis):
        """Pipelined LU gives distant ranks wide concurrency with the
        middle rank (the Figure 8 widening)."""
        _, _, fa = lu_analysis
        conc = fa.concurrency_events()
        assert any(r.proc in (0, 7) for r in conc)

    def test_past_stopline_thresholds(self, lu_analysis):
        _, _, fa = lu_analysis
        sl = fa.past_stopline()
        assert sl[fa.event.proc] == fa.event.marker
        for p, rec in fa.past_frontier.events.items():
            if p != fa.event.proc and rec is not None:
                assert sl[p] == rec.marker + 1

    def test_future_stopline_thresholds(self, lu_analysis):
        _, _, fa = lu_analysis
        sl = fa.future_stopline()
        for p, rec in fa.future_frontier.events.items():
            if p != fa.event.proc and rec is not None:
                assert sl[p] == rec.marker

    def test_send_recv_pair_is_consistent_cut(self, pipeline):
        """A cut containing both a send and its receive is consistent."""
        tr, order = pipeline
        pair = tr.message_pairs()[0]
        assert is_consistent_frontier(
            tr, [pair.send.index, pair.recv.index], order
        )

    def test_inconsistent_cut_detected(self, pipeline):
        """A receive inside the cut with its send outside is not."""
        tr, order = pipeline
        pair = tr.message_pairs()[0]
        before_send = tr.by_proc(pair.send.proc)[0]
        assert before_send.index != pair.send.index
        assert not is_consistent_frontier(
            tr, [before_send.index, pair.recv.index], order
        )

    def test_two_events_one_process_rejected(self, pipeline):
        tr, order = pipeline
        rows = tr.by_proc(0)
        assert not is_consistent_frontier(
            tr, [rows[0].index, rows[1].index], order
        )


class TestStrassenCausality:
    def test_master_sends_precede_all_worker_activity(self):
        cfg = st.StrassenConfig(n=8, nprocs=4)
        _, tr = traced_run(st.strassen_program(cfg), 4)
        order = compute_causal_order(tr)
        first_send = next(r for r in tr.by_proc(0) if r.is_send)
        # The first operand send precedes the result receive it enables.
        result_recvs = [r for r in tr.by_proc(0) if r.is_recv]
        assert result_recvs
        assert order.happens_before(first_send.index, result_recvs[0].index)
