"""The HistoryIndex shared analysis substrate.

Covers the tentpole invariants:

* incremental (record-by-record) index state equals the batch-derived
  reference (``compute_causal_order`` + ``Trace._match_messages``);
* a multi-analysis session (stopline -> frontiers -> races -> critical
  path) performs exactly one vector-clock build and one matching build,
  asserted via ``HistoryIndex.stats()``;
* ``ensure_index`` memoizes one index per Trace object;
* ``Trace.span`` is computed once and cached;
* the vectorized ``is_antichain`` agrees with the pairwise
  ``happens_before`` definition;
* stale indexes refuse queries.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import traced_run
from repro.analysis import (
    HistoryIndex,
    StaleIndexError,
    compute_causal_order,
    critical_path,
    detect_races,
    ensure_index,
    is_antichain,
    analyze_frontiers,
    analyze_matching,
)
from repro.apps.lu import LUConfig, lu_program
from repro.apps.ring import ring_program
from repro.debugger.stopline import StoplinePlacement, compute_stopline


@pytest.fixture(scope="module")
def lu_trace():
    cfg = LUConfig(grid=16, nprocs=8, panels=2, sweeps=2)
    _, trace = traced_run(lu_program(cfg), 8)
    return trace


@pytest.fixture()
def ring_trace():
    _, trace = traced_run(ring_program(rounds=2), 4)
    return trace


# ----------------------------------------------------------------------
# incremental == batch
# ----------------------------------------------------------------------
def test_incremental_equals_batch_clocks_and_matching(lu_trace):
    """Feeding records one at a time (with interleaved queries forcing
    repeated catch-ups) yields the exact batch-derived state."""
    batch_order = compute_causal_order(lu_trace)
    index = HistoryIndex(nprocs=lu_trace.nprocs)
    for k, rec in enumerate(lu_trace):
        index.extend(rec)
        if k % 97 == 0:
            # interleaved query: forces an incremental catch-up mid-stream
            index.message_pairs()
            _ = index.clocks
    assert len(index) == len(lu_trace)
    np.testing.assert_array_equal(index.clocks, batch_order.clocks)
    assert [(p.send.index, p.recv.index) for p in index.message_pairs()] == [
        (p.send.index, p.recv.index) for p in lu_trace.message_pairs()
    ]
    assert [r.index for r in index.unmatched_sends()] == sorted(
        r.index for r in lu_trace.unmatched_sends()
    )
    assert [r.index for r in index.unmatched_recvs()] == [
        r.index for r in lu_trace.unmatched_recvs()
    ]
    # catch-ups extended the components; they never rebuilt them
    stats = index.stats()
    assert stats.clock_builds == 1
    assert stats.matching_builds == 1
    assert stats.clock_extends == len(lu_trace)
    assert stats.matching_extends == len(lu_trace)


def test_incremental_rows_and_span_match_trace(ring_trace):
    index = HistoryIndex(ring_trace.records, nprocs=ring_trace.nprocs)
    for p in range(ring_trace.nprocs):
        assert [r.index for r in index.by_proc(p)] == [
            r.index for r in ring_trace.by_proc(p)
        ]
    assert index.span == ring_trace.span
    for p in range(ring_trace.nprocs):
        for rec in ring_trace.by_proc(p):
            assert index.record_at_marker(p, rec.marker) is not None


# ----------------------------------------------------------------------
# one build per multi-analysis session (the acceptance criterion)
# ----------------------------------------------------------------------
def test_multi_analysis_session_derives_once(lu_trace):
    """stopline -> frontiers -> races -> critical path on the same trace:
    exactly one vector-clock build and one matching build."""
    index = ensure_index(lu_trace)

    event = next(r.index for r in lu_trace if r.is_recv)
    compute_stopline(
        lu_trace, event, StoplinePlacement.PAST_FRONTIER, index=index
    )
    analyze_frontiers(lu_trace, event, index=index)
    detect_races(lu_trace, index=index)
    critical_path(lu_trace, index=index)
    analyze_matching(lu_trace, index=index)

    stats = index.stats()
    assert stats.clock_builds == 1
    assert stats.matching_builds == 1

    # the bare-trace signatures share the same memoized index: still one
    analyze_frontiers(lu_trace, event)
    detect_races(lu_trace)
    critical_path(lu_trace)
    stats = ensure_index(lu_trace).stats()
    assert stats.clock_builds == 1
    assert stats.matching_builds == 1


def test_ensure_index_memoizes_on_trace(ring_trace):
    a = ensure_index(ring_trace)
    b = ensure_index(ring_trace)
    assert a is b
    assert ring_trace.history_index() is a
    # an explicit index argument wins over the memoized one
    other = HistoryIndex(ring_trace.records, nprocs=ring_trace.nprocs)
    assert ensure_index(ring_trace, index=other) is other


def test_trace_adopts_bound_index_matching(ring_trace):
    """Trace.message_pairs() reuses the bound index's matching instead of
    re-deriving (the back-compat seam)."""
    index = ensure_index(ring_trace)
    pairs = index.message_pairs()
    assert ring_trace.message_pairs() is pairs


def test_index_from_stream_without_trace():
    """ensure_index accepts a bare record iterator (streaming form)."""
    _, trace = traced_run(ring_program(rounds=1), 3)
    index = ensure_index(iter(list(trace)))
    assert len(index) == len(trace)
    assert index.order.happens_before(0, len(trace) - 1) in (True, False)


# ----------------------------------------------------------------------
# satellite: Trace.span caching
# ----------------------------------------------------------------------
def test_trace_span_cached(ring_trace):
    first = ring_trace.span
    assert ring_trace._span == first
    assert ring_trace.span is ring_trace.span  # same tuple object
    empty = type(ring_trace)([], 2)
    assert empty.span == (0.0, 0.0)


# ----------------------------------------------------------------------
# satellite: vectorized is_antichain == pairwise definition
# ----------------------------------------------------------------------
def test_is_antichain_matches_pairwise_definition(lu_trace):
    order = ensure_index(lu_trace).order
    rng = np.random.default_rng(7)
    n = len(lu_trace)
    for _ in range(25):
        k = int(rng.integers(1, 8))
        sel = [int(i) for i in rng.integers(0, n, size=k)]
        expected = not any(
            order.happens_before(a, b)
            for a in sel
            for b in sel
            if a != b
        )
        assert is_antichain(lu_trace, sel) == expected
    assert is_antichain(lu_trace, [])
    assert is_antichain(lu_trace, [3])
    assert is_antichain(lu_trace, [3, 3])  # duplicates are one event


# ----------------------------------------------------------------------
# staleness
# ----------------------------------------------------------------------
def test_stale_index_refuses_queries(ring_trace):
    index = ensure_index(ring_trace)
    index.message_pairs()
    index.invalidate()
    assert index.stale
    with pytest.raises(StaleIndexError):
        index.message_pairs()
    with pytest.raises(StaleIndexError):
        _ = index.order
    with pytest.raises(StaleIndexError):
        index.extend(ring_trace[0])
    # a fresh ensure_index call replaces the stale memoized one
    fresh = ensure_index(ring_trace)
    assert fresh is not index
    assert not fresh.stale


# ----------------------------------------------------------------------
# column store & proc validation
# ----------------------------------------------------------------------
def test_extend_rejects_out_of_range_proc(ring_trace):
    from dataclasses import replace

    index = HistoryIndex(nprocs=ring_trace.nprocs)
    index.extend(ring_trace[0])
    bad_high = replace(ring_trace[1], proc=ring_trace.nprocs)
    with pytest.raises(ValueError, match="outside"):
        index.extend(bad_high)
    bad_low = replace(ring_trace[1], proc=-1)
    with pytest.raises(ValueError, match="outside"):
        index.extend(bad_low)
    # the failed extends left no partial state behind
    assert len(index) == 1
    assert index.column("proc").tolist() == [ring_trace[0].proc]
    index.extend(ring_trace[1])
    assert len(index) == 2


def test_extend_columns_rejects_out_of_range_proc(ring_trace):
    from dataclasses import replace

    from repro.trace.columnar import ColumnBlock

    records = [replace(r) for r in ring_trace[:4]]
    records[2] = replace(records[2], proc=ring_trace.nprocs + 3)
    block = ColumnBlock.from_records(records)
    index = HistoryIndex(nprocs=ring_trace.nprocs)
    with pytest.raises(ValueError, match="outside"):
        index.extend_columns(block)
    assert len(index) == 0  # nothing ingested from the bad block


def test_column_store_mirrors_records(ring_trace):
    from repro.trace.columnar import KIND_CODES

    index = ensure_index(ring_trace)
    cols = index.columns
    assert cols["index"].tolist() == [r.index for r in ring_trace]
    assert cols["proc"].tolist() == [r.proc for r in ring_trace]
    assert cols["kind"].tolist() == [KIND_CODES[r.kind] for r in ring_trace]
    assert cols["src"].tolist() == [r.src for r in ring_trace]
    assert cols["t0"].tolist() == [r.t0 for r in ring_trace]
    assert cols["seq"].tolist() == [r.seq for r in ring_trace]


def test_engine_validation_and_selection(ring_trace):
    with pytest.raises(ValueError, match="engine"):
        HistoryIndex(nprocs=2, engine="fortran")
    py = HistoryIndex.from_trace(ring_trace, engine="python")
    vec = HistoryIndex.from_trace(ring_trace, engine="numpy")
    assert py.stats().engine == "python"
    assert vec.stats().engine == "numpy"
    np.testing.assert_array_equal(py.clocks, vec.clocks)
    assert [r.index for r in py.unmatched_sends()] == [
        r.index for r in vec.unmatched_sends()
    ]


def test_window_index_is_incremental(ring_trace):
    index = HistoryIndex(nprocs=ring_trace.nprocs)
    half = len(ring_trace) // 2
    for rec in ring_trace[:half]:
        index.extend(rec)
    t0, t1 = index.span
    first = [r.index for r in index.window(t0, t1)]
    assert first == [r.index for r in ring_trace[:half]]
    for rec in ring_trace[half:]:
        index.extend(rec)
    t0, t1 = index.span
    assert [r.index for r in index.window(t0, t1)] == [
        r.index for r in ring_trace
    ]
    stats = index.stats()
    assert stats.window_builds == 1  # extension merged, not rebuilt
    assert stats.window_extends == len(ring_trace)


def test_kernel_stats_surfaced(ring_trace):
    index = ensure_index(ring_trace)
    detect_races(ring_trace, index=index)
    critical_path(ring_trace, index=index)
    stats = index.stats()
    assert stats.kernel_calls.get("races[numpy]") == 1
    assert stats.kernel_calls.get("critical_path[numpy]") == 1
    text = stats.as_text()
    assert "races[numpy]" in text and "engine=numpy" in text
