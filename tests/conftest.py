"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import mp
from repro.instrument import Uinst, WrapperLibrary, lifecycle_wrapper
from repro.trace import TraceRecorder


def traced_run(
    program,
    nprocs,
    *,
    functions=(),
    modules=(),
    lifecycle=False,
    raise_errors=True,
    **rt_kw,
):
    """Run a program with wrapper (and optionally uinst) instrumentation.

    Returns ``(runtime, trace)``.  On non-FINISHED outcomes with
    ``raise_errors=False`` the runtime is left shut down but its trace
    and comm_log remain inspectable.
    """
    rt = mp.Runtime(nprocs, **rt_kw)
    recorder = TraceRecorder(nprocs)
    WrapperLibrary(rt, recorder)
    wrappers = []
    if functions or modules:
        uinst = Uinst(rt, recorder)
        for fn in functions:
            uinst.register_function(fn)
        for mod in modules:
            uinst.register_module(mod)
        wrappers.append(uinst.target_wrapper())
    if lifecycle:
        wrappers.append(lifecycle_wrapper(recorder))
    rt.run(program, raise_errors=raise_errors, target_wrappers=wrappers)
    rt.shutdown()
    return rt, recorder.snapshot()


@pytest.fixture
def run_traced():
    return traced_run
