"""Smoke tests: every shipped example runs to completion.

The examples are the library's executable documentation; these tests
keep them working and assert each one's headline claim appears in its
output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

CASES = {
    "quickstart.py": ["expected total 21", "SVG written"],
    "debug_deadlock.py": [
        "deadlock",
        "cycle: p0 -> p7 -> p0",
        "BUG: expected dest=1",
    ],
    "undo_and_frontiers.py": [
        "undo...",
        "concurrency region",
        "stopline (past)",
        "stopline (future)",
    ],
    "race_hunt.py": [
        "racing receives found",
        "reproduces the matching: True",
        "(p2d2) matching",
    ],
    "instrumentation_tour.py": [
        "__aims__.enter",
        "trace file: aims_trace.trace",
        "patched entries; function restored",
    ],
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_example_runs(name):
    script = EXAMPLES_DIR / name
    assert script.exists(), f"example {name} missing"
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=EXAMPLES_DIR.parent,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    for needle in CASES[name]:
        assert needle in proc.stdout, (
            f"{name} output missing {needle!r}; got:\n{proc.stdout[-1500:]}"
        )


def test_every_example_covered():
    """A new example file must be added to the smoke list."""
    shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert shipped == set(CASES), (
        "examples and smoke-test list out of sync: "
        f"missing {shipped ^ set(CASES)}"
    )
