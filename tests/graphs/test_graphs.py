"""Trace graph, call graph, communication graph, actions, and export."""

from __future__ import annotations

import pytest

from repro.apps import fibonacci as fibmod
from repro.apps import strassen as st
from repro.graphs import (
    ArcKind,
    ChannelNode,
    FunctionNode,
    ROOT_FUNCTION,
    TraceGraph,
    build_action_graph,
    build_call_graph,
    build_comm_graph,
    call_graph_to_dot,
    call_graph_to_vcg,
    comm_graph_to_vcg,
    iter_channel_traffic,
    projection,
    trace_graph_to_dot,
    trace_graph_to_vcg,
)
from tests.conftest import traced_run


@pytest.fixture(scope="module")
def strassen_trace():
    cfg = st.StrassenConfig(n=8, nprocs=8)
    _, tr = traced_run(st.strassen_program(cfg), 8)
    return tr


@pytest.fixture(scope="module")
def fib_trace():
    _, tr = traced_run(fibmod.fib_program(8), 1, functions=[fibmod.fib])
    return tr


class TestTraceGraph:
    def test_channel_nodes_are_unordered(self):
        assert ChannelNode.between(3, 1) == ChannelNode.between(1, 3)
        assert str(ChannelNode.between(3, 1)) == "ch(1,3)"

    def test_structure_from_strassen(self, strassen_trace):
        g = TraceGraph.from_trace(strassen_trace, arc_limit=None)
        channels = {(c.a, c.b) for c in g.channel_nodes()}
        # Rank 0 exchanges with every worker: channels (0, w).
        assert channels == {(0, w) for w in range(1, 8)}
        # Every channel carries 2 operand sends + 1 result send = 3
        # send-arcs' worth of traffic, and 3 receives.
        for ch, sends, recvs in iter_channel_traffic(g):
            assert sends == 3, ch
            assert recvs == 3, ch

    def test_node_bound(self, strassen_trace):
        g = TraceGraph.from_trace(strassen_trace)
        n_functions = len({n.function for n in g.function_nodes()})
        assert len(g.nodes) <= g.node_count_bound(n_functions)

    def test_call_arcs_from_func_records(self, fib_trace):
        g = TraceGraph.from_trace(fib_trace, arc_limit=None)
        fns = {n.function for n in g.function_nodes()}
        assert fns == {ROOT_FUNCTION, "fib"}
        call_events = sum(
            a.count for a in g.arcs() if a.kind is ArcKind.CALL
        )
        assert call_events == fibmod.fib_call_count(8)

    def test_dissemination_bounds_arcs(self, fib_trace):
        limited = TraceGraph.from_trace(fib_trace, arc_limit=16)
        fib_node = FunctionNode(0, "fib")
        assert limited.incident_count(fib_node) <= 17  # soft bound
        assert limited.total_merges() > 0
        # Event counts are preserved through merging.
        unlimited = TraceGraph.from_trace(fib_trace, arc_limit=None)
        total = lambda g: sum(a.count for a in g.arcs() if a.kind is ArcKind.CALL)  # noqa: E731
        assert total(limited) == total(unlimited)

    def test_arc_limit_validation(self):
        with pytest.raises(ValueError, match="arc_limit"):
            TraceGraph(2, arc_limit=1)

    def test_zoom_reconstruction(self, fib_trace):
        """Merged arcs can be re-expanded by rescanning the trace."""
        g = TraceGraph.from_trace(fib_trace, arc_limit=8)
        merged = [a for a in g.arcs() if a.kind is ArcKind.CALL and a.count > 1]
        assert merged, "expected at least one merged arc"
        arc = merged[0]
        originals = g.reconstruct_arc(arc, fib_trace)
        assert len(originals) >= arc.count
        assert all(r.kind.value == "func_entry" for r in originals)

    def test_projection_is_single_process(self, strassen_trace):
        g = TraceGraph.from_trace(strassen_trace)
        for arc in projection(g, 0):
            assert arc.src.proc == 0 and arc.dst.proc == 0


class TestCallGraph:
    def test_fib_recursion_edges(self, fib_trace):
        g = build_call_graph(fib_trace, proc=0)
        assert g.counts["fib"] == fibmod.fib_call_count(8)
        edge = g.edges[("fib", "fib")]
        # Every call except the root call is a self-recursion.
        assert edge.calls == fibmod.fib_call_count(8) - 1
        assert g.edges[(ROOT_FUNCTION, "fib")].calls == 1

    def test_inclusive_time_accumulates(self, fib_trace):
        g = build_call_graph(fib_trace, proc=0)
        assert g.edges[("fib", "fib")].inclusive_time >= 0.0

    def test_arcs_displayed_adjustable(self, fib_trace):
        """"The number of calls per arc is adjustable" (Figure 9)."""
        g = build_call_graph(fib_trace, proc=0)
        edge = g.edges[("fib", "fib")]
        assert edge.arcs_displayed(1) == edge.calls
        assert edge.arcs_displayed(edge.calls) == 1
        assert edge.arcs_displayed(10) == -(-edge.calls // 10)
        with pytest.raises(ValueError):
            edge.arcs_displayed(0)

    def test_merged_view(self, fib_trace):
        g = build_call_graph(fib_trace, proc=None)
        assert "fib" in g.functions()

    def test_text_rendering(self, fib_trace):
        text = build_call_graph(fib_trace, proc=0).as_text(calls_per_arc=10)
        assert "fib -> fib" in text


class TestCommGraph:
    def test_strassen_comm_graph_shape(self, strassen_trace):
        """Figure 4: one node per matched message pair."""
        g = build_comm_graph(strassen_trace)
        assert g.node_count() == 21  # 14 operands + 7 results
        assert g.unmatched_sends == []
        assert g.arc_count() > 0
        # Results causally follow operands within each worker.
        for node in g.nodes:
            if node.tag == st.TAG_RESULT:
                preds = g.predecessors(node.node_id)
                assert preds, f"result node {node} should have a cause"

    def test_buggy_strassen_unmatched_in_graph(self):
        cfg = st.StrassenConfig(n=8, nprocs=8, buggy=True)
        _, tr = traced_run(st.strassen_program(cfg), 8, raise_errors=False)
        g = build_comm_graph(tr)
        assert len(g.unmatched_sends) == 1
        # 6 workers x 2 operands + worker7 x 1 + 6 results = 19 matched.
        assert g.node_count() == 19

    def test_text_rendering(self, strassen_trace):
        text = build_comm_graph(strassen_trace).as_text()
        assert "communication graph: 21 nodes" in text


class TestActionGraph:
    def test_master_actions(self, strassen_trace):
        g = build_action_graph(strassen_trace, proc=0)
        root = g.actions_of(ROOT_FUNCTION)
        assert root, "root activation must exist"
        kinds = [a.kind.value for a in root[0]]
        # The master's life: compute, distribute, collect, compute.
        assert "distribute" in kinds and "collect" in kinds
        assert kinds.index("distribute") < kinds.index("collect")

    def test_runs_folded(self, strassen_trace):
        g = build_action_graph(strassen_trace, proc=0)
        distribute = [
            a for a in g.actions_of(ROOT_FUNCTION)[0] if a.kind.value == "distribute"
        ]
        assert len(distribute) == 1
        assert distribute[0].count == 14  # all operand sends in one run

    def test_text(self, strassen_trace):
        assert "action graph" in build_action_graph(strassen_trace, 0).as_text()


class TestExport:
    def test_vcg_call_graph(self, fib_trace):
        g = build_call_graph(fib_trace, proc=0)
        vcg = call_graph_to_vcg(g, calls_per_arc=0)
        assert vcg.startswith("graph: {") and vcg.endswith("}")
        assert 'sourcename: "fib" targetname: "fib"' in vcg

    def test_vcg_parallel_arcs(self, fib_trace):
        """Figure 9's multiple arcs: calls/“calls_per_arc” edges."""
        g = build_call_graph(fib_trace, proc=0)
        edge = g.edges[("fib", "fib")]
        vcg = call_graph_to_vcg(g, calls_per_arc=10)
        n_arcs = vcg.count('sourcename: "fib" targetname: "fib"')
        assert n_arcs == edge.arcs_displayed(10)

    def test_dot_call_graph(self, fib_trace):
        dot = call_graph_to_dot(build_call_graph(fib_trace, proc=0))
        assert dot.startswith("digraph") and '"fib" -> "fib"' in dot

    def test_vcg_comm_graph(self, strassen_trace):
        vcg = comm_graph_to_vcg(build_comm_graph(strassen_trace))
        assert vcg.count("node:") == 21

    def test_trace_graph_exports(self, strassen_trace):
        g = TraceGraph.from_trace(strassen_trace)
        vcg = trace_graph_to_vcg(g)
        dot = trace_graph_to_dot(g, proc=0)
        assert "ch(0,1)" in vcg
        assert "shape=ellipse" in dot
