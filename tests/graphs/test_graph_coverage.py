"""Additional coverage of graph corners: actions on workers, channel
traffic queries, per-proc DOT filtering, and incremental construction."""

from __future__ import annotations

import pytest

from repro.apps import strassen as st
from repro.graphs import (
    ActionKind,
    ChannelNode,
    ROOT_FUNCTION,
    TraceGraph,
    build_action_graph,
    build_comm_graph,
    trace_graph_to_dot,
)
from tests.conftest import traced_run


@pytest.fixture(scope="module")
def strassen_trace():
    cfg = st.StrassenConfig(n=8, nprocs=8)
    _, tr = traced_run(st.strassen_program(cfg), 8)
    return tr


class TestWorkerActions:
    def test_worker_action_sequence(self, strassen_trace):
        """A worker's life: collect two operands, compute, distribute the
        result -- the §4.4 comprehension view."""
        g = build_action_graph(strassen_trace, proc=3)
        seq = g.actions_of(ROOT_FUNCTION)[0]
        kinds = [a.kind for a in seq]
        assert ActionKind.COLLECT in kinds
        assert ActionKind.DISTRIBUTE in kinds
        assert kinds.index(ActionKind.COLLECT) < kinds.index(ActionKind.DISTRIBUTE)

    def test_collect_run_count(self, strassen_trace):
        g = build_action_graph(strassen_trace, proc=2)
        collects = [
            a for a in g.actions_of(ROOT_FUNCTION)[0]
            if a.kind is ActionKind.COLLECT
        ]
        assert sum(a.count for a in collects) == 2  # two operand receives

    def test_action_detail_strings(self, strassen_trace):
        g = build_action_graph(strassen_trace, proc=0)
        distribute = next(
            a for a in g.actions_of(ROOT_FUNCTION)[0]
            if a.kind is ActionKind.DISTRIBUTE
        )
        assert "->" in distribute.detail
        assert "x14" in str(distribute)


class TestIncrementalTraceGraph:
    def test_built_as_execution_runs(self, strassen_trace):
        """Feeding records one at a time equals from_trace (the paper:
        "a trace graph which is built as the execution is running")."""
        incremental = TraceGraph(8, arc_limit=None)
        for rec in strassen_trace:
            incremental.add_record(rec)
        batch = TraceGraph.from_trace(strassen_trace, arc_limit=None)
        key = lambda g: sorted(  # noqa: E731
            (a.kind.value, str(a.src), str(a.dst), a.count) for a in g.arcs()
        )
        assert key(incremental) == key(batch)
        assert incremental.events_consumed == batch.events_consumed

    def test_channel_node_identity(self):
        g = TraceGraph(4)
        assert ChannelNode(3, 1) == ChannelNode.between(1, 3)

    def test_root_function_nodes_preexist(self):
        g = TraceGraph(3)
        roots = [n for n in g.function_nodes() if n.function == ROOT_FUNCTION]
        assert len(roots) == 3

    def test_dot_per_proc_filter(self, strassen_trace):
        g = TraceGraph.from_trace(strassen_trace)
        dot_all = trace_graph_to_dot(g)
        dot_p3 = trace_graph_to_dot(g, proc=3)
        assert len(dot_p3) < len(dot_all)
        assert '"p3:<main>"' in dot_p3
        assert '"p5:<main>"' not in dot_p3


class TestCommGraphQueries:
    def test_nodes_of_proc(self, strassen_trace):
        g = build_comm_graph(strassen_trace)
        # Rank 0 participates in every message; worker 4 in exactly 3.
        assert len(g.nodes_of_proc(0)) == 21
        assert len(g.nodes_of_proc(4)) == 3

    def test_predecessor_successor_symmetry(self, strassen_trace):
        g = build_comm_graph(strassen_trace)
        for a, b in g.arcs:
            assert b in g.successors(a)
            assert a in g.predecessors(b)

    def test_unmatched_recvs_surface(self):
        """A cancelled-receive trace shows an unmatched receive? No --
        cancelled receives never produce RECV records.  But toggling
        recording off around a send does orphan the receive record."""
        from repro import mp
        from repro.instrument import WrapperLibrary
        from repro.trace import TraceRecorder

        rt = mp.Runtime(2)
        recorder = TraceRecorder(2)
        WrapperLibrary(rt, recorder)

        def prog(comm):
            if comm.rank == 0:
                recorder.set_enabled(False, proc=0)  # hide the send
                comm.send("ghost", dest=1)
                recorder.set_enabled(True, proc=0)
            else:
                comm.recv(source=0)

        rt.run(prog)
        rt.shutdown()
        g = build_comm_graph(recorder.snapshot())
        assert len(g.unmatched_recvs) == 1
        assert "unmatched recvs: 1" in g.as_text()
