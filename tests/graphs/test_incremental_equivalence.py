"""Incremental (sink-fed) trace graphs equal batch-built ones.

The §3.2 trace graph is "built as the execution is running"; the
streaming pipeline feeds it through a bus sink record-by-record.  These
tests assert that path is *identical* -- nodes, every arc (including
dissemination merge state), consumed-event counts -- to building from a
materialized trace after the fact, on the ring and LU example apps.
"""

from __future__ import annotations

import pytest

from repro import mp
from repro.apps.lu import LUConfig, lu_program
from repro.apps.ring import ring_program
from repro.graphs.tracegraph import TraceGraph
from repro.instrument import WrapperLibrary, lifecycle_wrapper
from repro.trace import TraceRecorder, save_trace, TraceFileReader


def graph_state(g: TraceGraph):
    """Complete observable state: nodes, per-edge arc lists, merges."""
    edges = {}
    for (kind, src, dst), arcs in g._edges.items():
        edges[(kind.value, str(src), str(dst))] = [
            (a.count, a.first_index, a.last_index, a.t0, a.t1, a.tag)
            for a in arcs
        ]
    return {
        "nodes": sorted(str(n) for n in g._node_edges),
        "edges": edges,
        "merges": {str(n): c for n, c in g._merge_counts.items()},
        "events": g.events_consumed,
        "total_merges": g.total_merges(),
    }


def run_with_live_graph(program, nprocs, arc_limit):
    """One run with a graph subscribed to the live stream; returns
    (live graph, trace snapshot)."""
    rt = mp.Runtime(nprocs)
    recorder = TraceRecorder(nprocs)
    live = TraceGraph(nprocs, arc_limit)
    recorder.subscribe(live.sink())
    WrapperLibrary(rt, recorder)
    rt.run(program, target_wrappers=[lifecycle_wrapper(recorder)])
    rt.shutdown()
    return live, recorder.snapshot()


@pytest.mark.parametrize("arc_limit", [None, 4])
def test_ring_incremental_equals_batch(arc_limit):
    live, trace = run_with_live_graph(
        ring_program(rounds=3), nprocs=4, arc_limit=arc_limit
    )
    batch = TraceGraph.from_trace(trace, arc_limit=arc_limit)
    assert graph_state(live) == graph_state(batch)


@pytest.mark.parametrize("arc_limit", [None, 6])
def test_lu_incremental_equals_batch(arc_limit):
    cfg = LUConfig(grid=16, nprocs=4, panels=2, sweeps=2)
    live, trace = run_with_live_graph(
        lu_program(cfg), nprocs=4, arc_limit=arc_limit
    )
    assert len(trace) > 0
    batch = TraceGraph.from_trace(trace, arc_limit=arc_limit)
    assert graph_state(live) == graph_state(batch)


def test_file_stream_equals_batch(tmp_path):
    """from_records over a file reader's stream matches the in-memory
    build -- the post-mortem streaming path."""
    _, trace = run_with_live_graph(ring_program(rounds=2), 4, arc_limit=8)
    path = tmp_path / "ring.jsonl"
    save_trace(trace, path)
    reader = TraceFileReader(path)
    streamed = TraceGraph.from_records(
        reader.iter_records(), reader.nprocs, arc_limit=8
    )
    batch = TraceGraph.from_trace(trace, arc_limit=8)
    assert graph_state(streamed) == graph_state(batch)
