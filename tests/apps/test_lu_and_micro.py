"""LU SSOR solver, Fibonacci, and the microworkloads."""

from __future__ import annotations

import pytest

from repro import mp
from repro.apps import (
    LUConfig,
    distributed_fib_program,
    fib,
    fib_call_count,
    fib_program,
    halo_program,
    lu_program,
    master_worker_program,
    pingpong_program,
    ring_program,
)


class TestFibonacci:
    def test_values(self):
        assert [fib(n) for n in range(8)] == [0, 1, 1, 2, 3, 5, 8, 13]

    def test_call_count_recurrence(self):
        """calls(n) = 2*fib(n+1) - 1 (the Table 1 call-count column)."""
        for n in range(2, 15):
            assert fib_call_count(n) == 2 * fib(n + 1) - 1

    def test_program(self):
        rt = mp.run_program(fib_program(10), 1)
        assert rt.results() == [55]

    def test_distributed_fib(self):
        rt = mp.run_program(distributed_fib_program(12), 3)
        assert rt.results()[0] == fib(12)


class TestLU:
    def test_block_partition_covers_grid(self):
        cfg = LUConfig(grid=19, nprocs=4, sweeps=1)
        rows = []
        for r in range(4):
            lo, hi = cfg.block_rows(r)
            rows.extend(range(lo, hi))
        assert rows == list(range(19))

    def test_residual_decreases(self):
        cfg = LUConfig(grid=16, nprocs=4, sweeps=5)
        rt = mp.run_program(lu_program(cfg), 4)
        residuals = rt.results()[0]
        assert len(residuals) == 5
        assert residuals[-1] < residuals[0] * 0.5  # SSOR converges

    def test_single_rank_matches_multirank_direction(self):
        """More ranks change the pipeline, not the convergence trend."""
        res = {}
        for nprocs in (1, 4):
            cfg = LUConfig(grid=12, nprocs=nprocs, sweeps=4)
            rt = mp.run_program(lu_program(cfg), nprocs)
            res[nprocs] = rt.results()[0]
        assert res[1][-1] < res[1][0]
        assert res[4][-1] < res[4][0]

    def test_grid_validation(self):
        with pytest.raises(ValueError, match="grid"):
            LUConfig(grid=2, nprocs=4)

    def test_pipeline_messages_flow(self):
        cfg = LUConfig(grid=16, nprocs=8, sweeps=2)
        rt = mp.Runtime(8)
        rt.run(lu_program(cfg))
        # Per sweep: 7 down + 7 up boundary messages + residual halo
        # (14) + reduce traffic (7): > 30 messages per sweep.
        assert rt.messages_sent >= 60


class TestMicroWorkloads:
    def test_ring(self):
        rt = mp.run_program(ring_program(rounds=3), 5)
        assert rt.results()[0] == 3 * sum(range(5))

    def test_pingpong(self):
        rt = mp.run_program(pingpong_program(rounds=4, size=8), 2)
        # Each round adds 1.0 to every element: sum = sum(0..7) + 4*8.
        assert rt.results()[0] == sum(range(8)) + 4 * 8

    def test_halo_smooths(self):
        rt = mp.run_program(halo_program(steps=6), 4)
        values = [v for v in rt.results()]
        spread = max(values) - min(values)
        assert spread < 3.0  # initial spread (0..3) strictly shrinks

    def test_master_worker_all_tasks_done(self):
        rt = mp.run_program(master_worker_program(n_tasks=9), 4)
        assert rt.results()[0] == [i * i for i in range(9)]

    def test_master_worker_uses_wildcards(self):
        rt = mp.Runtime(4)
        rt.run(master_worker_program(n_tasks=6))
        # Wildcard receives recorded for replay: master's result receives.
        master_recvs = [k for k in rt.comm_log.recv_matches if k[0] == 0]
        assert len(master_recvs) == 6

    def test_master_worker_replays(self):
        rt1 = mp.Runtime(5, policy="random", seed=13)
        rt1.run(master_worker_program(n_tasks=10))
        rt2 = mp.Runtime(5, replay_log=rt1.comm_log)
        rt2.run(master_worker_program(n_tasks=10))
        assert rt1.results()[0] == rt2.results()[0]
