"""The schedule-sensitive demo workload for the explorer."""

from __future__ import annotations

import pytest

from repro import mp
from repro.apps import (
    SCHEDBUG_MODES,
    reference_result,
    schedbug_program,
    task_value,
)


class TestSchedbugProgram:
    def test_reference_result_matches_task_values(self):
        assert reference_result(5) == sum(task_value(t) for t in range(5))

    @pytest.mark.parametrize("mode", SCHEDBUG_MODES)
    def test_base_run_is_clean_in_every_mode(self, mode):
        """The seeded bugs only fire on *alternative* schedules: the
        recorded run_to_block execution always finishes (that is what
        makes them exploration targets rather than plain crashes)."""
        rt = mp.Runtime(4)
        report = rt.run(schedbug_program(n_tasks=6, mode=mode, task_cost=1.0))
        rt.shutdown()
        assert report.outcome is mp.RunOutcome.FINISHED

    def test_safe_mode_returns_reference_result(self):
        rt = mp.Runtime(4)
        rt.run(schedbug_program(n_tasks=7, mode="safe", task_cost=1.0))
        results = rt.results()
        rt.shutdown()
        assert results[0] == reference_result(7)

    def test_unsafe_mode_folds_in_arrival_order(self):
        """The non-commutative fold differs from the safe sum -- that
        asymmetry is what alternative schedules perturb."""
        rt = mp.Runtime(4)
        rt.run(schedbug_program(n_tasks=6, mode="unsafe", task_cost=1.0))
        results = rt.results()
        rt.shutdown()
        assert results[0] != reference_result(6)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown schedbug mode"):
            schedbug_program(mode="nope")

    def test_needs_three_ranks(self):
        rt = mp.Runtime(2)
        report = rt.run(schedbug_program(n_tasks=2), raise_errors=False)
        exc = rt.first_exception()
        rt.shutdown()
        assert report.outcome is mp.RunOutcome.ERROR
        assert isinstance(exc, ValueError)
