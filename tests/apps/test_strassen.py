"""The Strassen workload: correctness and the paper's bug scenario."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mp
from repro.apps import strassen as st


class TestLocalMath:
    def test_split_quadrants_shapes(self):
        m = np.arange(36.0).reshape(6, 6)
        q11, q12, q21, q22 = st.split_quadrants(m)
        assert q11.shape == (3, 3)
        np.testing.assert_array_equal(q11, m[:3, :3])
        np.testing.assert_array_equal(q22, m[3:, 3:])

    def test_split_odd_rejected(self):
        with pytest.raises(ValueError, match="even square"):
            st.split_quadrants(np.zeros((5, 5)))

    def test_split_nonsquare_rejected(self):
        with pytest.raises(ValueError, match="even square"):
            st.split_quadrants(np.zeros((4, 6)))

    def test_strassen_identity_local(self):
        """Combining the 7 products reproduces the plain product."""
        a, b = st.make_inputs(16, seed=3)
        ms = [x @ y for (x, y) in st.strassen_operands(a, b)]
        np.testing.assert_allclose(st.combine_products(ms), a @ b, atol=1e-10)

    def test_seven_products(self):
        a, b = st.make_inputs(8)
        assert len(st.strassen_operands(a, b)) == st.N_PRODUCTS


class TestDistributedRun:
    @pytest.mark.parametrize("nprocs", [2, 4, 8])
    def test_result_matches_reference(self, nprocs):
        cfg = st.StrassenConfig(n=16, nprocs=nprocs)
        rt = mp.run_program(st.strassen_program(cfg), nprocs)
        np.testing.assert_allclose(
            rt.results()[0], st.reference_product(cfg), atol=1e-10
        )

    def test_worker_assignment_covers_all_products(self):
        for nprocs in (2, 4, 8):
            cfg = st.StrassenConfig(n=8, nprocs=nprocs)
            assigned = []
            for w in range(1, nprocs):
                assigned.extend(cfg.products_of_worker(w))
            assert sorted(assigned) == list(range(st.N_PRODUCTS))

    def test_message_counts_8_procs(self):
        """14 operand sends + 7 results = 21 messages (Figure 3 shape)."""
        cfg = st.StrassenConfig(n=8, nprocs=8)
        rt = mp.Runtime(8)
        rt.run(st.strassen_program(cfg))
        assert rt.messages_sent == 21

    def test_config_validation(self):
        with pytest.raises(ValueError, match="worker"):
            st.StrassenConfig(n=8, nprocs=1)
        with pytest.raises(ValueError, match="even"):
            st.StrassenConfig(n=9, nprocs=4)


class TestBuggyVariant:
    """The Figure 5-6 scenario: wrong destination in matr_send."""

    def test_deadlock_between_master_and_last_worker(self):
        cfg = st.StrassenConfig(n=8, nprocs=8, buggy=True)
        rt = mp.Runtime(8)
        report = rt.run(st.strassen_program(cfg), raise_errors=False)
        assert report.outcome is mp.RunOutcome.DEADLOCK
        blocked_ranks = sorted(w.rank for w in report.waiting)
        assert blocked_ranks == [0, 7]
        peers = {w.rank: w.peer for w in report.waiting}
        assert peers[0] == 7 and peers[7] == 0  # waiting on each other
        rt.shutdown()

    def test_worker7_receives_only_one_message(self):
        """"processes 1-6 each receive 2 messages and process 7 only
        receives 1" (paper Section 4.1)."""
        cfg = st.StrassenConfig(n=8, nprocs=8, buggy=True)
        rt = mp.Runtime(8)
        rt.run(st.strassen_program(cfg), raise_errors=False)
        recvs = {rank: 0 for rank in range(8)}
        for (rank, _), _env in rt.comm_log.recv_matches.items():
            recvs[rank] += 1
        assert all(recvs[w] == 2 for w in range(1, 7))
        assert recvs[7] == 1
        rt.shutdown()

    def test_missed_message_is_unmatched(self):
        """The stray operand message sits undelivered in a mailbox."""
        cfg = st.StrassenConfig(n=8, nprocs=8, buggy=True)
        rt = mp.Runtime(8)
        rt.run(st.strassen_program(cfg), raise_errors=False)
        unmatched = rt.unmatched_sends()
        assert len(unmatched) == 1
        env = unmatched[0].envelope
        assert env.src == 0
        assert env.tag == st.TAG_OPERAND_B
        assert env.dst != 7  # it went astray, not to worker 7
        rt.shutdown()

    def test_correct_variant_has_no_unmatched_sends(self):
        cfg = st.StrassenConfig(n=8, nprocs=8, buggy=False)
        rt = mp.Runtime(8)
        rt.run(st.strassen_program(cfg))
        assert rt.unmatched_sends() == []
        rt.shutdown()
