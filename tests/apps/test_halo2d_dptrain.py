"""The 2-D stencil and data-parallel training workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    dptrain_program,
    halo2d_program,
    initial_tile,
    make_shard,
    process_grid,
    reference_halo2d,
)
from repro.mp import run_program


class TestProcessGrid:
    @pytest.mark.parametrize(
        "n,expect",
        [(1, (1, 1)), (4, (2, 2)), (6, (3, 2)), (8, (4, 2)), (16, (4, 4)),
         (64, (8, 8)), (7, (7, 1)), (1024, (32, 32))],
    )
    def test_squarest_factorisation(self, n, expect):
        py, px = process_grid(n)
        assert (py, px) == expect
        assert py * px == n

    def test_tiles_partition_the_grid(self):
        nprocs, tile = 6, 3
        py, px = process_grid(nprocs)
        grid = reference_halo2d(nprocs, tile, steps=0)
        for rank in range(nprocs):
            gy, gx = divmod(rank, px)
            block = grid[gy * tile:(gy + 1) * tile, gx * tile:(gx + 1) * tile]
            np.testing.assert_allclose(block, initial_tile(rank, nprocs, tile))


class TestHalo2D:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 6, 8])
    def test_matches_numpy_reference(self, nprocs):
        tile, steps, seed = 3, 3, 2
        rt = run_program(halo2d_program(tile=tile, steps=steps, seed=seed),
                         nprocs=nprocs)
        ref = reference_halo2d(nprocs, tile, steps, seed)
        py, px = process_grid(nprocs)
        for rank, got in enumerate(rt.results()):
            gy, gx = divmod(rank, px)
            want = ref[gy * tile:(gy + 1) * tile, gx * tile:(gx + 1) * tile].sum()
            assert got == pytest.approx(float(want), abs=1e-12)

    def test_mean_preserved(self):
        # The periodic Jacobi update is an averaging: the global mean
        # is an invariant of the iteration.
        before = reference_halo2d(8, 4, steps=0, seed=1).mean()
        after = reference_halo2d(8, 4, steps=5, seed=1).mean()
        assert after == pytest.approx(before, abs=1e-12)

    def test_seeds_differ(self):
        a = run_program(halo2d_program(tile=3, steps=1, seed=0), nprocs=4)
        b = run_program(halo2d_program(tile=3, steps=1, seed=1), nprocs=4)
        assert a.results() != b.results()

    def test_compute_cost_advances_clock_only(self):
        plain = run_program(halo2d_program(tile=3, steps=2), nprocs=4)
        costed = run_program(halo2d_program(tile=3, steps=2, compute_cost=5.0),
                             nprocs=4)
        assert costed.results() == plain.results()
        assert all(
            c.clock.now > p.clock.now
            for c, p in zip(costed.procs, plain.procs)
        )


class TestDptrain:
    def test_loss_decreases_monotonically(self):
        rt = run_program(dptrain_program(steps=6, dim=4, n_samples=8), nprocs=4)
        losses = rt.results()[0]
        assert len(losses) == 6
        assert all(b < a for a, b in zip(losses, losses[1:]))

    def test_all_ranks_agree(self):
        rt = run_program(dptrain_program(steps=3, dim=4, n_samples=8), nprocs=4)
        first = rt.results()[0]
        assert all(r == first for r in rt.results())

    def test_shards_deterministic_and_distinct(self):
        x0, y0 = make_shard(0, seed=0, n_samples=4, dim=3)
        x0b, y0b = make_shard(0, seed=0, n_samples=4, dim=3)
        x1, _ = make_shard(1, seed=0, n_samples=4, dim=3)
        np.testing.assert_array_equal(x0, x0b)
        np.testing.assert_array_equal(y0, y0b)
        assert not np.array_equal(x0, x1)

    def test_single_rank_matches_serial_sgd(self):
        # With size == 1 the allreduces are identity: the loop is plain
        # full-batch SGD, checkable against a direct numpy loop.
        steps, dim, n, lr, seed = 4, 3, 8, 0.05, 2
        rt = run_program(
            dptrain_program(steps=steps, dim=dim, n_samples=n, lr=lr, seed=seed),
            nprocs=1,
        )
        x, y = make_shard(0, seed, n, dim)
        w = np.zeros(dim)
        expect = []
        for _ in range(steps):
            resid = x @ w - y
            expect.append(float(resid @ resid) / n)
            w = w - lr * (2.0 * (x.T @ resid) / n)
        assert rt.results()[0] == pytest.approx(expect)
