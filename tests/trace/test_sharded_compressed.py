"""The out-of-core trace store: per-block compression, shard
manifests, and their corruption/compat edges.

Everything here holds the store's two contracts: (1) a sharded and/or
compressed layout is *record-for-record identical* to the plain
single-file layout under every read API, and (2) files written without
the new features stay byte-for-byte what they always were.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.mp.datatypes import SourceLocation
from repro.trace import (
    ColumnBlock,
    EventKind,
    FileSink,
    TraceBus,
    TraceFileError,
    TraceFileReader,
    TraceFileWriter,
    TraceRecord,
    TraceShardWriter,
    load_trace,
    save_trace,
)
from repro.trace.compression import (
    COMPRESSED_HEADER,
    COMPRESSED_MAGIC,
    NO_ZSTD_ENV,
    ZLIB_CODEC,
    ZSTD_CODEC,
    default_codec,
    resolve_codec,
)
from repro.trace.shard import ShardManifest
from repro.trace.tracefile import MANIFEST_FORMAT_NAME, main as tracefile_main
from repro.trace.trace import Trace

KINDS = list(EventKind)


def random_record(rng: random.Random, index: int, nprocs: int) -> TraceRecord:
    t0 = round(rng.uniform(0, 100), 3)
    rec = TraceRecord(
        index=index,
        proc=rng.randrange(nprocs),
        kind=rng.choice(KINDS),
        t0=t0,
        t1=round(t0 + rng.uniform(0, 5), 3),
        marker=index + 1,
        location=SourceLocation(
            f"file{rng.randrange(3)}.py", rng.randrange(1, 500), f"fn{rng.randrange(5)}"
        ),
    )
    if rng.random() < 0.5:
        rec.src = rng.randrange(nprocs)
        rec.dst = rng.randrange(nprocs)
        rec.tag = rng.randrange(100)
        rec.size = rng.randrange(1, 1 << 16)
        rec.seq = rng.randrange(1000)
    if rng.random() < 0.3:
        rec.extra = {"note": f"x{index}"}
    return rec


def make_batch(seed: int, n: int, nprocs: int = 4) -> list[TraceRecord]:
    rng = random.Random(seed)
    return [random_record(rng, i, nprocs) for i in range(n)]


def write_single(path, batch, nprocs=4, index_block=64, compression=None):
    with TraceFileWriter(
        path, nprocs=nprocs, index_block=index_block, compression=compression
    ) as w:
        for rec in batch:
            w.write(rec)


def write_sharded(path, batch, nprocs=4, index_block=64, **kwargs):
    with TraceShardWriter(path, nprocs, index_block=index_block, **kwargs) as w:
        for rec in batch:
            w.write(rec)


# ----------------------------------------------------------------------
# compression
# ----------------------------------------------------------------------
class TestCompression:
    def test_zlib_roundtrip_and_smaller(self, tmp_path):
        batch = make_batch(0, 800)
        plain, packed = tmp_path / "p.trace", tmp_path / "z.trace"
        write_single(plain, batch)
        write_single(packed, batch, compression="zlib")
        reader = TraceFileReader(packed)
        assert reader.read_all() == batch
        assert packed.stat().st_size < plain.stat().st_size / 2
        assert all(
            b.encoding == "columnar+zlib" and b.raw_nbytes > b.nbytes
            for b in reader.index.blocks
        )

    def test_auto_picks_an_available_codec(self, tmp_path):
        batch = make_batch(1, 100)
        path = tmp_path / "a.trace"
        write_single(path, batch, compression="auto")
        reader = TraceFileReader(path)
        assert reader.read_all() == batch
        assert {b.encoding for b in reader.index.blocks} == {
            default_codec().encoding
        }

    def test_every_read_api_agrees_with_uncompressed(self, tmp_path):
        batch = make_batch(2, 500)
        plain, packed = tmp_path / "p.trace", tmp_path / "z.trace"
        write_single(plain, batch, index_block=32)
        write_single(packed, batch, index_block=32, compression="zlib")
        rp, rz = TraceFileReader(plain), TraceFileReader(packed)
        assert rz.read_all() == rp.read_all()
        assert list(rz.iter_records()) == list(rp.iter_records())
        assert rz.seek_window(20, 60, {0, 2}) == rp.seek_window(20, 60, {0, 2})
        assert (
            rz.read_columns(t_lo=20, t_hi=60).to_records()
            == rp.read_columns(t_lo=20, t_hi=60).to_records()
        )

    def test_uncompressed_output_is_byte_identical_to_before(self, tmp_path):
        """compression=None (the default) must not change the format:
        no RTBZ frames, no extra footer fields."""
        batch = make_batch(3, 120)
        a, b = tmp_path / "a.trace", tmp_path / "b.trace"
        write_single(a, batch)
        with TraceFileWriter(b, nprocs=4, index_block=64) as w:
            for rec in batch:
                w.write(rec)
        raw = a.read_bytes()
        assert raw == b.read_bytes()
        assert COMPRESSED_MAGIC not in raw
        footer = json.loads(raw.rsplit(b"\n", 2)[-2])
        for entry in footer["__trace_index__"]["blocks"]:
            assert entry[6] == "columnar"  # encoding tag, no raw_nbytes
            assert len(entry) == 7

    def test_footerless_compressed_file_reads_linearly(self, tmp_path):
        batch = make_batch(4, 300)
        path = tmp_path / "z.trace"
        write_single(path, batch, compression="zlib")
        raw = path.read_bytes()
        path.write_bytes(raw[: raw.rfind(b'{"__trace_index__"')])
        reader = TraceFileReader(path)
        assert reader.index is None
        assert reader.read_all(tolerant=True) == batch

    def test_truncated_compressed_block_leaves_prefix_readable(self, tmp_path):
        """A torn compressed flush degrades exactly like a torn raw one:
        the block-aligned prefix decodes, the tail is skipped."""
        batch = make_batch(5, 256)
        path = tmp_path / "z.trace"
        write_single(path, batch, index_block=64, compression="zlib")
        reader = TraceFileReader(path)
        last = reader.index.blocks[-1]
        raw = path.read_bytes()
        # cut into the middle of the last block's payload, footer gone
        path.write_bytes(raw[: last.offset + last.nbytes // 2])
        damaged = TraceFileReader(path)
        got = damaged.read_all(tolerant=True)
        assert got == batch[:192]
        assert damaged.last_skipped_lines == 1
        # intolerant read surfaces the damage instead
        with pytest.raises(TraceFileError, match="truncated compressed"):
            TraceFileReader(path).read_all(tolerant=False)

    def test_unknown_codec_code_raises_clearly(self, tmp_path):
        batch = make_batch(6, 64)
        path = tmp_path / "z.trace"
        write_single(path, batch, index_block=64, compression="zlib")
        reader = TraceFileReader(path)
        block = reader.index.blocks[0]
        raw = bytearray(path.read_bytes())
        # codec code byte sits right after the 4-byte magic
        assert bytes(raw[block.offset : block.offset + 4]) == COMPRESSED_MAGIC
        raw[block.offset + 4] = 200
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceFileError, match="codec code 200"):
            TraceFileReader(path).read_all(tolerant=True)

    def test_unknown_footer_encoding_raises_clearly(self, tmp_path):
        batch = make_batch(7, 64)
        path = tmp_path / "t.trace"
        write_single(path, batch, index_block=64)
        raw = path.read_bytes()
        head, footer, tail = raw.rsplit(b"\n", 2)
        footer = footer.replace(b'"columnar"', b'"columnar+lz99"')
        path.write_bytes(head + b"\n" + footer + b"\n" + tail)
        with pytest.raises(TraceFileError, match="unknown encoding"):
            TraceFileReader(path).read_all()

    def test_damaged_compressed_payload_raises_or_skips(self, tmp_path):
        batch = make_batch(8, 64)
        path = tmp_path / "z.trace"
        write_single(path, batch, index_block=64, compression="zlib")
        block = TraceFileReader(path).index.blocks[0]
        raw = bytearray(path.read_bytes())
        mid = block.offset + COMPRESSED_HEADER.size + 10
        raw[mid] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceFileError, match="zlib"):
            TraceFileReader(path).read_all()

    def test_explicit_missing_codec_refuses(self, tmp_path, monkeypatch):
        monkeypatch.setenv(NO_ZSTD_ENV, "1")
        assert not ZSTD_CODEC.available()
        with pytest.raises(TraceFileError, match="not available"):
            TraceFileWriter(tmp_path / "t.trace", 2, compression="zstd")
        # auto degrades to zlib instead of failing
        assert resolve_codec("auto") is ZLIB_CODEC

    def test_unknown_compression_name_refuses(self, tmp_path):
        with pytest.raises(TraceFileError, match="unknown compression"):
            TraceFileWriter(tmp_path / "t.trace", 2, compression="brotli")

    def test_compression_requires_v3(self, tmp_path):
        with pytest.raises(TraceFileError, match="v3"):
            TraceFileWriter(
                tmp_path / "t.trace", 2, version=2, compression="zlib"
            )

    def test_v1_v2_files_unchanged_and_readable(self, tmp_path):
        """The pre-columnar formats round-trip exactly as before."""
        batch = make_batch(9, 60)
        for version in (1, 2):
            path = tmp_path / f"v{version}.trace"
            with TraceFileWriter(path, nprocs=4, version=version) as w:
                for rec in batch:
                    w.write(rec)
            raw = path.read_bytes()
            assert COMPRESSED_MAGIC not in raw and b"RTB3" not in raw
            assert TraceFileReader(path).read_all() == batch


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------
class TestShardStore:
    def test_by_proc_roundtrip_record_for_record(self, tmp_path):
        batch = make_batch(10, 700)
        manifest = tmp_path / "t.trace"
        write_sharded(manifest, batch)
        reader = TraceFileReader(manifest)
        assert reader.sharded
        assert reader.nprocs == 4
        assert reader.read_all() == batch
        assert list(reader.iter_records()) == batch

    def test_manifest_layout_on_disk(self, tmp_path):
        batch = make_batch(11, 200)
        manifest = tmp_path / "t.trace"
        write_sharded(manifest, batch)
        header = json.loads(manifest.read_text())
        assert header["format"] == MANIFEST_FORMAT_NAME
        assert header["kinds"] == [k.value for k in EventKind]
        assert len(header["shards"]) == 4
        for entry in header["shards"]:
            shard_path = manifest.parent / entry["path"]
            assert shard_path.exists()
            # each shard is an ordinary, individually readable v3 file
            sub = TraceFileReader(shard_path)
            assert not sub.sharded
            assert len(sub.read_all()) == entry["records"]
        parsed = ShardManifest.from_jsonable(header)
        assert parsed.records == len(batch)

    def test_hash_routing(self, tmp_path):
        batch = make_batch(12, 300, nprocs=8)
        manifest = tmp_path / "t.trace"
        write_sharded(manifest, batch, nprocs=8, by="hash", shards=3)
        reader = TraceFileReader(manifest)
        assert reader.manifest.nshards == 3
        assert reader.read_all() == batch

    def test_sharded_compressed_every_api_equals_single(self, tmp_path):
        batch = make_batch(13, 900)
        single, manifest = tmp_path / "s.trace", tmp_path / "m.trace"
        write_single(single, batch, index_block=32)
        write_sharded(manifest, batch, index_block=32, compression="zlib")
        rs, rm = TraceFileReader(single), TraceFileReader(manifest)
        assert rm.read_all() == rs.read_all()
        assert rm.span() == rs.span()
        for window in [(0, 100, None), (30, 70, {1, 3}), (99, 99.5, {0})]:
            assert rm.seek_window(*window) == rs.seek_window(*window)
            assert (
                rm.read_columns(
                    t_lo=window[0], t_hi=window[1], procs=window[2]
                ).to_records()
                == rs.read_columns(
                    t_lo=window[0], t_hi=window[1], procs=window[2]
                ).to_records()
            )
        assert rm.read_columns().to_records() == batch

    def test_seek_window_short_circuits_without_opening_files(self, tmp_path):
        batch = make_batch(14, 400)
        manifest = tmp_path / "t.trace"
        write_sharded(manifest, batch)
        # degenerate window: no shard file touched
        reader = TraceFileReader(manifest)
        assert reader.seek_window(50, 10) == []
        assert reader.shards_opened == 0
        # empty procs filter: ditto
        assert reader.seek_window(0, 100, procs=set()) == []
        assert reader.shards_opened == 0
        # window outside the global span: ditto
        assert reader.seek_window(1e6, 2e6) == []
        assert reader.shards_opened == 0
        # a single-proc filter opens exactly that proc's shard
        assert reader.seek_window(0, 200, procs={2})
        assert reader.shards_opened == 1

    def test_empty_shards_never_opened(self, tmp_path):
        # procs 2/3 never record: their shard files exist but stay closed
        batch = [
            rec
            for rec in make_batch(15, 300)
            if rec.proc in (0, 1)
        ]
        manifest = tmp_path / "t.trace"
        write_sharded(manifest, batch)
        reader = TraceFileReader(manifest)
        assert reader.read_all() == batch
        assert reader.shards_opened == 2
        reader2 = TraceFileReader(manifest)
        assert reader2.seek_window(0, 200, procs={2, 3}) == []
        assert reader2.shards_opened == 0

    def test_empty_recording(self, tmp_path):
        manifest = tmp_path / "t.trace"
        write_sharded(manifest, [])
        reader = TraceFileReader(manifest)
        assert reader.read_all() == []
        assert reader.span() == (0.0, 0.0)
        assert reader.shards_opened == 0

    def test_single_proc_manifest(self, tmp_path):
        batch = [rec for rec in make_batch(16, 150, nprocs=1)]
        manifest = tmp_path / "t.trace"
        write_sharded(manifest, batch, nprocs=1)
        reader = TraceFileReader(manifest)
        assert reader.manifest.nshards == 1
        assert reader.read_all() == batch
        assert reader.seek_window(0, 200, procs={0}) == [
            r for r in batch if r.t1 >= 0 and r.t0 <= 200
        ]

    def test_iter_records_where_filter(self, tmp_path):
        batch = make_batch(17, 300)
        manifest = tmp_path / "t.trace"
        write_sharded(manifest, batch)
        reader = TraceFileReader(manifest)
        got = list(reader.iter_records(where=lambda r: r.proc == 1))
        assert got == [r for r in batch if r.proc == 1]

    def test_write_columns_routes_and_roundtrips(self, tmp_path):
        batch = make_batch(18, 500)
        manifest = tmp_path / "t.trace"
        with TraceShardWriter(manifest, 4, compression="zlib") as w:
            assert w.write_columns(ColumnBlock.from_records(batch)) == 500
        assert TraceFileReader(manifest).read_all() == batch

    def test_writer_validation(self, tmp_path):
        with pytest.raises(ValueError, match="by='hash'"):
            TraceShardWriter(tmp_path / "a.trace", 4, shards=2, by="proc")
        with pytest.raises(ValueError, match="unknown routing"):
            TraceShardWriter(tmp_path / "b.trace", 4, by="range")
        w = TraceShardWriter(tmp_path / "c.trace", 2)
        bad = TraceRecord(index=0, proc=5, kind=EventKind.COMPUTE,
                          t0=0.0, t1=0.0, marker=0)
        with pytest.raises(ValueError, match="outside"):
            w.write(bad)
        w.close()
        with pytest.raises(TraceFileError, match="closed"):
            w.write(bad)

    def test_save_trace_shards_and_load(self, tmp_path):
        batch = make_batch(19, 200)
        trace = Trace(batch, 4)
        manifest = tmp_path / "t.trace"
        save_trace(trace, manifest, shards="proc", compression="zlib")
        assert load_trace(manifest).records == tuple(batch)

    def test_file_sink_shards_passthrough(self, tmp_path):
        batch = make_batch(20, 120)
        manifest = tmp_path / "t.trace"
        bus = TraceBus()
        bus.attach(FileSink(manifest, nprocs=4, shards="proc",
                            compression="zlib"))
        for rec in batch:
            bus.publish(rec)
        bus.close()
        reader = TraceFileReader(manifest)
        assert reader.sharded
        assert reader.read_all() == batch


# ----------------------------------------------------------------------
# CLI: info / convert / reindex over the new layouts
# ----------------------------------------------------------------------
class TestStoreCLI:
    def test_info_reports_compression(self, tmp_path, capsys):
        write_single(tmp_path / "z.trace", make_batch(21, 300),
                     compression="zlib")
        assert tracefile_main(["info", str(tmp_path / "z.trace")]) == 0
        out = capsys.readouterr().out
        assert "columnar+zlib" in out
        assert "compression" in out

    def test_info_reports_manifest_layout(self, tmp_path, capsys):
        write_sharded(tmp_path / "m.trace", make_batch(22, 300),
                      compression="zlib")
        assert tracefile_main(["info", str(tmp_path / "m.trace")]) == 0
        out = capsys.readouterr().out
        assert MANIFEST_FORMAT_NAME in out
        assert "m-shard0000.trace" in out
        assert "columnar+zlib" in out

    def test_convert_compress_and_back_roundtrips(self, tmp_path):
        batch = make_batch(23, 400)
        plain = tmp_path / "p.trace"
        write_single(plain, batch)
        packed = tmp_path / "z.trace"
        assert tracefile_main(
            ["convert", str(plain), str(packed), "--compress", "zlib"]
        ) == 0
        assert TraceFileReader(packed).read_all() == batch
        back = tmp_path / "back.trace"
        assert tracefile_main(["convert", str(packed), str(back)]) == 0
        # decompressing restores the original file byte-for-byte
        assert back.read_bytes() == plain.read_bytes()

    def test_convert_to_sharded_and_back(self, tmp_path):
        batch = make_batch(24, 400)
        plain = tmp_path / "p.trace"
        write_single(plain, batch)
        manifest = tmp_path / "m.trace"
        assert tracefile_main(
            ["convert", str(plain), str(manifest), "--by", "proc",
             "--compress", "zlib"]
        ) == 0
        assert TraceFileReader(manifest).read_all() == batch
        back = tmp_path / "back.trace"
        assert tracefile_main(["convert", str(manifest), str(back)]) == 0
        # side-table interning order differs after the shard merge, so
        # compare at the record level (the store's actual contract)
        reader = TraceFileReader(back)
        assert not reader.sharded
        assert reader.has_index
        assert reader.read_all() == batch

    def test_convert_hash_shards(self, tmp_path):
        batch = make_batch(25, 200)
        plain = tmp_path / "p.trace"
        write_single(plain, batch)
        manifest = tmp_path / "m.trace"
        assert tracefile_main(
            ["convert", str(plain), str(manifest), "--shards", "2"]
        ) == 0
        reader = TraceFileReader(manifest)
        assert reader.manifest.nshards == 2
        assert reader.read_all() == batch

    def test_reindex_refuses_manifest(self, tmp_path, capsys):
        write_sharded(tmp_path / "m.trace", make_batch(26, 50))
        assert tracefile_main(["reindex", str(tmp_path / "m.trace")]) == 2
        assert "manifest" in capsys.readouterr().err

    def test_reindex_rebuilds_compressed_footer(self, tmp_path):
        batch = make_batch(27, 256)
        path = tmp_path / "z.trace"
        write_single(path, batch, index_block=64, compression="zlib")
        raw = path.read_bytes()
        path.write_bytes(raw[: raw.rfind(b'{"__trace_index__"')])
        assert tracefile_main(["reindex", str(path)]) == 0
        reader = TraceFileReader(path)
        assert reader.index is not None
        assert all(
            b.encoding == "columnar+zlib" and b.raw_nbytes
            for b in reader.index.blocks
        )
        assert reader.read_all() == batch
