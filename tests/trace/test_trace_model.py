"""Trace records, the Trace container, markers, and trace files."""

from __future__ import annotations

import pytest

from repro.mp.datatypes import SourceLocation
from repro.trace import (
    EventKind,
    ExecutionMarker,
    MarkerVector,
    Trace,
    TraceFileError,
    TraceFileReader,
    TraceFileWriter,
    TraceRecord,
    load_trace,
    merge_traces,
    save_trace,
)


def rec(index, proc, kind, t0, t1, marker, **kw):
    return TraceRecord(index=index, proc=proc, kind=kind, t0=t0, t1=t1,
                       marker=marker, **kw)


def make_sample_trace() -> Trace:
    """2 procs: p0 computes then sends; p1 receives then computes."""
    records = [
        rec(0, 0, EventKind.COMPUTE, 0.0, 5.0, 1),
        rec(1, 0, EventKind.SEND, 5.0, 6.0, 2, src=0, dst=1, tag=7, seq=0, size=4),
        rec(2, 1, EventKind.RECV, 0.0, 11.0, 1, src=0, dst=1, tag=7, seq=0, size=4),
        rec(3, 1, EventKind.COMPUTE, 11.0, 20.0, 2),
        rec(4, 0, EventKind.SEND, 6.0, 7.0, 3, src=0, dst=1, tag=9, seq=0, size=1),
    ]
    return Trace(records, nprocs=2)


class TestTraceRecord:
    def test_send_recv_predicates(self):
        r = rec(0, 0, EventKind.SEND, 0, 1, 1, src=0, dst=1, tag=2, seq=0)
        assert r.is_send and not r.is_recv and r.is_message
        r2 = rec(1, 1, EventKind.RECV, 0, 1, 1, src=0, dst=1, tag=2, seq=0)
        assert r2.is_recv and not r2.is_send
        r3 = rec(2, 0, EventKind.COMPUTE, 0, 1, 2)
        assert not r3.is_message

    def test_json_roundtrip(self):
        r = rec(
            3, 2, EventKind.RECV, 1.5, 2.5, 9,
            location=SourceLocation("f.py", 10, "g"),
            src=1, dst=2, tag=4, seq=3, size=16,
            peer_location=SourceLocation("h.py", 20, "send_fn"),
            peer_marker=5, peer_time=1.0,
            construct_id=2, extra={"via": "wait"},
        )
        back = TraceRecord.from_jsonable(r.to_jsonable())
        assert back == r

    def test_json_roundtrip_minimal(self):
        r = rec(0, 0, EventKind.COMPUTE, 0.0, 1.0, 1)
        assert TraceRecord.from_jsonable(r.to_jsonable()) == r

    def test_duration(self):
        assert rec(0, 0, EventKind.COMPUTE, 1.0, 4.0, 1).duration == 3.0


class TestTraceQueries:
    def test_by_proc_program_order(self):
        tr = make_sample_trace()
        assert [r.index for r in tr.by_proc(0)] == [0, 1, 4]
        assert [r.index for r in tr.by_proc(1)] == [2, 3]

    def test_span(self):
        assert make_sample_trace().span == (0.0, 20.0)
        assert Trace([], 2).span == (0.0, 0.0)

    def test_message_pairs(self):
        tr = make_sample_trace()
        pairs = tr.message_pairs()
        assert len(pairs) == 1
        assert pairs[0].send.index == 1 and pairs[0].recv.index == 2
        assert pairs[0].latency == 11.0 - 6.0

    def test_unmatched(self):
        tr = make_sample_trace()
        assert [r.index for r in tr.unmatched_sends()] == [4]
        assert tr.unmatched_recvs() == []

    def test_record_at_marker(self):
        tr = make_sample_trace()
        assert tr.record_at_marker(0, 2).index == 1
        assert tr.record_at_marker(1, 1).index == 2
        assert tr.record_at_marker(0, 99) is None

    def test_time_queries(self):
        tr = make_sample_trace()
        assert tr.first_at_or_after(0, 5.5).index == 4
        assert tr.first_at_or_after(0, 100.0) is None
        assert tr.last_before(1, 11.0).index == 2
        assert tr.last_before(1, 0.0) is None

    def test_window(self):
        tr = make_sample_trace()
        assert {r.index for r in tr.window(5.5, 10.0)} == {1, 2, 4}

    def test_counts(self):
        tr = make_sample_trace()
        assert tr.recv_counts() == {0: 0, 1: 1}
        assert tr.send_counts() == {0: 2, 1: 0}
        assert tr.final_markers() == {0: 3, 1: 2}
        assert tr.counts_by_kind()[EventKind.SEND] == 2

    def test_merge(self):
        tr = make_sample_trace()
        a = Trace(list(tr.records)[:3], 2)
        b = Trace(list(tr.records)[3:], 2)
        merged = merge_traces([a, b])
        assert [r.index for r in merged] == [0, 1, 2, 3, 4]


class TestMarkers:
    def test_marker_ordering(self):
        assert ExecutionMarker(0, 3) < ExecutionMarker(0, 5)
        assert str(ExecutionMarker(2, 7)) == "p2@7"

    def test_vector_accessors(self):
        v = MarkerVector({0: 3, 2: 5})
        assert v[0] == 3 and v.get(1) is None and 2 in v and len(v) == 2
        assert list(v) == [0, 2]
        assert v.as_dict() == {0: 3, 2: 5}

    def test_vector_negative_rejected(self):
        with pytest.raises(ValueError):
            MarkerVector({0: -1})

    def test_vector_equality_and_hash(self):
        assert MarkerVector({0: 1}) == MarkerVector({0: 1})
        assert hash(MarkerVector({0: 1})) == hash(MarkerVector({0: 1}))
        assert MarkerVector({0: 1}) != MarkerVector({0: 2})

    def test_dominates(self):
        hi = MarkerVector({0: 5, 1: 5})
        lo = MarkerVector({0: 3, 1: 5})
        assert hi.dominates(lo)
        assert not lo.dominates(hi)
        # Unconstrained ranks don't block domination.
        assert MarkerVector({0: 5}).dominates(MarkerVector({1: 99})) is True

    def test_merged_min(self):
        a = MarkerVector({0: 5, 1: 2})
        b = MarkerVector({0: 3, 2: 9})
        assert a.merged_min(b) == MarkerVector({0: 3, 1: 2, 2: 9})

    def test_from_markers(self):
        v = MarkerVector.from_markers([ExecutionMarker(0, 1), ExecutionMarker(3, 4)])
        assert v.as_dict() == {0: 1, 3: 4}


class TestTraceFiles:
    def test_roundtrip(self, tmp_path):
        tr = make_sample_trace()
        path = tmp_path / "trace.jsonl"
        save_trace(tr, path)
        back = load_trace(path)
        assert back.nprocs == 2
        assert list(back.records) == list(tr.records)

    def test_flush_on_demand(self, tmp_path):
        """Records become readable only after flush (the paper's added
        AIMS capability)."""
        path = tmp_path / "t.jsonl"
        writer = TraceFileWriter(path, nprocs=1)
        writer.write(rec(0, 0, EventKind.COMPUTE, 0, 1, 1))
        assert len(TraceFileReader(path).read()) == 0
        assert writer.flush() == 1
        assert len(TraceFileReader(path).read()) == 1
        writer.close()

    def test_auto_flush(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceFileWriter(path, nprocs=1, auto_flush_every=2)
        for i in range(5):
            writer.write(rec(i, 0, EventKind.COMPUTE, i, i + 1, i + 1))
        assert len(TraceFileReader(path).read()) == 4  # two auto-flushes
        writer.close()
        assert len(TraceFileReader(path).read()) == 5

    def test_write_after_close_rejected(self, tmp_path):
        writer = TraceFileWriter(tmp_path / "t.jsonl", nprocs=1)
        writer.close()
        with pytest.raises(TraceFileError, match="closed"):
            writer.write(rec(0, 0, EventKind.COMPUTE, 0, 1, 1))

    def test_bad_header_rejected(self, tmp_path):
        p = tmp_path / "bogus.jsonl"
        p.write_text('{"format": "something-else", "version": 1, "nprocs": 2}\n')
        with pytest.raises(TraceFileError, match="not a repro-trace"):
            TraceFileReader(p)
        p.write_text("not json at all\n")
        with pytest.raises(TraceFileError, match="bad header"):
            TraceFileReader(p)

    def test_rescan_window(self, tmp_path):
        tr = make_sample_trace()
        path = tmp_path / "trace.jsonl"
        save_trace(tr, path)
        reader = TraceFileReader(path)
        got = reader.rescan_window(5.5, 10.0)
        assert {r.index for r in got} == {1, 2, 4}
        only_p0 = reader.rescan_window(5.5, 10.0, procs={0})
        assert {r.index for r in only_p0} == {1, 4}

    def test_iter_records_filtered(self, tmp_path):
        tr = make_sample_trace()
        path = tmp_path / "trace.jsonl"
        save_trace(tr, path)
        sends = list(TraceFileReader(path).iter_records(lambda r: r.is_send))
        assert len(sends) == 2
