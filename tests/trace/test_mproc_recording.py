"""Merge-free trace recording under the mproc backend.

Contract: with ``trace_path`` set, each forked rank streams its own
shard file and the parent writes only the manifest -- and the merged
read of that store is record-for-record identical to the legacy
pickle-and-merge path (``trace_mode="merge"``) for the same
deterministic, wildcard-free program.
"""

from __future__ import annotations

import json

import pytest

from repro.mp.backends.mproc import MprocBackend
from repro.mp.runtime import Runtime
from repro.mp.scheduler import RunOutcome
from repro.trace import EventKind, TraceFileReader
from repro.trace.shard import SHARD_TEMPLATE, ShardManifest

NPROCS = 3


def ring_target(comm):
    """Deterministic ring: explicit sources, no wildcards, no races."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    for k in range(3):
        comm.send((comm.rank, k), right, tag=5)
        comm.recv(left, tag=5)
    return comm.rank


def all_recv_target(comm):
    """Everyone sends once then waits for a message that never comes."""
    comm.send(("x", comm.rank), (comm.rank + 1) % comm.size, tag=1)
    comm.recv((comm.rank + 1) % comm.size, tag=99)


def run_traced(tmp_path, mode, name, targets=None, nprocs=NPROCS):
    path = tmp_path / name
    backend = MprocBackend(trace_path=path, trace_mode=mode)
    rt = Runtime(nprocs, backend=backend)
    rt.launch(targets if targets is not None else [ring_target] * nprocs)
    report = rt.run_until_idle()
    rt.shutdown()
    return path, report


def record_key(rec):
    return (
        rec.index, rec.proc, rec.kind, rec.marker,
        rec.src, rec.dst, rec.tag, rec.seq,
    )


def test_shard_mode_writes_manifest_and_per_rank_shards(tmp_path):
    path, report = run_traced(tmp_path, "shard", "run.trace")
    assert report.outcome is RunOutcome.FINISHED
    # one shard file per rank, named by the manifest template
    for rank in range(NPROCS):
        shard = tmp_path / SHARD_TEMPLATE.format(stem="run", num=rank)
        assert shard.is_file()
    manifest = ShardManifest.from_jsonable(json.loads(path.read_text()))
    assert manifest.nprocs == NPROCS
    assert len(manifest.shards) == NPROCS
    # rank-owned shards: each holds exactly its own rank's records
    for rank, info in enumerate(manifest.shards):
        assert info.procs == frozenset({rank})
        assert info.records > 0

    reader = TraceFileReader(path)
    assert reader.sharded
    records = list(reader.iter_records())
    assert len(records) == manifest.records
    indices = [rec.index for rec in records]
    assert indices == sorted(indices)
    kinds = {rec.kind for rec in records}
    # lifecycle wrapping is on: every rank contributes start/exit marks
    assert EventKind.PROC_START in kinds and EventKind.PROC_EXIT in kinds
    assert sum(1 for r in records if r.kind is EventKind.PROC_START) == NPROCS


def test_shard_and_merge_modes_record_identically(tmp_path):
    shard_path, rep1 = run_traced(tmp_path, "shard", "a.trace")
    merge_path, rep2 = run_traced(tmp_path, "merge", "b.trace")
    assert rep1.outcome is rep2.outcome is RunOutcome.FINISHED
    shard_reader = TraceFileReader(shard_path)
    merge_reader = TraceFileReader(merge_path)
    assert shard_reader.sharded and not merge_reader.sharded
    shard_recs = list(shard_reader.iter_records())
    merge_recs = list(merge_reader.iter_records())
    assert len(shard_recs) == len(merge_recs) > 0
    assert [record_key(r) for r in shard_recs] == [
        record_key(r) for r in merge_recs
    ]


def test_merge_mode_single_file_is_index_ordered(tmp_path):
    path, report = run_traced(tmp_path, "merge", "merged.trace")
    assert report.outcome is RunOutcome.FINISHED
    reader = TraceFileReader(path)
    records = reader.read_all()
    indices = [rec.index for rec in records]
    assert indices == sorted(indices)
    # per-rank index slices are disjoint and interleaved by nprocs
    for rec in records:
        assert rec.index % NPROCS == rec.proc


def test_deadlocked_run_still_writes_manifest(tmp_path):
    path, report = run_traced(
        tmp_path, "shard", "dead.trace", targets=[all_recv_target] * NPROCS
    )
    # the abort-path drain must NOT disturb deadlock classification
    assert report.outcome is RunOutcome.DEADLOCK
    assert len(report.blocked) == NPROCS
    assert len(report.waiting) == NPROCS
    reader = TraceFileReader(path)
    records = list(reader.iter_records())
    # each rank got at least PROC_START and its send on disk
    kinds = {rec.kind for rec in records}
    assert EventKind.SEND in kinds
    assert sum(1 for r in records if r.kind is EventKind.PROC_START) == NPROCS


def test_invalid_trace_mode_rejected():
    with pytest.raises(ValueError, match="trace_mode"):
        MprocBackend(trace_path="x.trace", trace_mode="bogus")


def test_untraced_backend_unchanged(tmp_path):
    backend = MprocBackend()
    rt = Runtime(NPROCS, backend=backend)
    rt.launch([ring_target] * NPROCS)
    report = rt.run_until_idle()
    rt.shutdown()
    assert report.outcome is RunOutcome.FINISHED
    assert list(tmp_path.iterdir()) == []
