"""The streaming trace pipeline: bus, sinks, recorder integration."""

from __future__ import annotations

import pytest

from repro import mp
from repro.apps.ring import ring_program
from repro.graphs.tracegraph import TraceGraph
from repro.instrument import WrapperLibrary
from repro.trace import (
    CallbackSink,
    EventKind,
    GraphSink,
    MemorySink,
    RingBufferSink,
    TraceBus,
    TraceFileReader,
    TraceRecord,
    TraceRecorder,
    pump,
)


def rec(index, t, proc=0, kind=EventKind.COMPUTE):
    return TraceRecord(index=index, proc=proc, kind=kind,
                       t0=t, t1=t + 1, marker=index + 1)


class TestTraceBus:
    def test_fanout_preserves_order(self):
        bus = TraceBus()
        a, b = MemorySink(), MemorySink()
        bus.attach(a)
        bus.attach(b)
        for i in range(5):
            bus.publish(rec(i, float(i)))
        assert [r.index for r in a.records] == list(range(5))
        assert a.records == b.records
        assert bus.published == 5

    def test_double_attach_rejected(self):
        bus = TraceBus()
        sink = MemorySink()
        bus.attach(sink)
        with pytest.raises(ValueError, match="already attached"):
            bus.attach(sink)

    def test_detach_stops_delivery(self):
        bus = TraceBus()
        sink = MemorySink()
        bus.attach(sink)
        bus.publish(rec(0, 0.0))
        bus.detach(sink)
        bus.publish(rec(1, 1.0))
        assert len(sink) == 1

    def test_late_subscriber_misses_prefix(self):
        bus = TraceBus()
        early = MemorySink()
        bus.attach(early)
        bus.publish(rec(0, 0.0))
        late = MemorySink()
        bus.attach(late)
        bus.publish(rec(1, 1.0))
        assert len(early) == 2
        assert len(late) == 1


class TestSinks:
    def test_ring_buffer_bounds_memory(self):
        sink = RingBufferSink(capacity=3)
        for i in range(10):
            sink.emit(rec(i, float(i)))
        assert len(sink) == 3
        assert [r.index for r in sink.records] == [7, 8, 9]
        assert sink.evicted == 7
        snap = sink.snapshot(nprocs=1)
        assert len(snap) == 3

    def test_callback_sink_counts(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit(rec(0, 0.0))
        sink.emit(rec(1, 1.0))
        assert sink.delivered == 2
        assert [r.index for r in seen] == [0, 1]

    def test_graph_sink_builds_graph(self):
        sink = GraphSink(nprocs=2)
        send = TraceRecord(index=0, proc=0, kind=EventKind.SEND,
                           t0=0, t1=1, marker=1, src=0, dst=1, tag=7, seq=0)
        recv = TraceRecord(index=1, proc=1, kind=EventKind.RECV,
                           t0=0, t1=2, marker=1, src=0, dst=1, tag=7, seq=0)
        pump([send, recv], sink)
        assert sink.graph.events_consumed == 2
        assert len(sink.graph.channel_nodes()) == 1


class TestRecorderPipeline:
    def test_default_memory_sink_snapshot(self):
        recorder = TraceRecorder(nprocs=2)
        recorder.record(0, EventKind.COMPUTE, 0.0, 1.0, 1)
        recorder.record(1, EventKind.COMPUTE, 0.0, 1.0, 1)
        snap = recorder.snapshot()
        assert len(snap) == 2
        assert recorder.total_recorded == 2

    def test_filtered_records_not_published(self):
        recorder = TraceRecorder(nprocs=1, kinds=[EventKind.SEND])
        seen = []
        recorder.add_callback(seen.append)
        recorder.record(0, EventKind.COMPUTE, 0.0, 1.0, 1)
        assert recorder.dropped == 1
        assert seen == []
        assert recorder.bus.published == 0

    def test_memory_limit_ring_mode(self):
        recorder = TraceRecorder(nprocs=1, memory_limit=4)
        for i in range(10):
            recorder.record(0, EventKind.COMPUTE, float(i), i + 1.0, i + 1)
        assert len(recorder) == 4
        # global indexes keep counting past the ring
        assert [r.index for r in recorder.records] == [6, 7, 8, 9]
        assert recorder.total_recorded == 10

    def test_backfill_subscription(self):
        recorder = TraceRecorder(nprocs=1)
        recorder.record(0, EventKind.COMPUTE, 0.0, 1.0, 1)
        late = MemorySink()
        recorder.subscribe(late, backfill=True)
        recorder.record(0, EventKind.COMPUTE, 1.0, 2.0, 2)
        assert len(late) == 2

    def test_file_sink_attach_and_flush(self, tmp_path):
        path = tmp_path / "t.jsonl"
        recorder = TraceRecorder(nprocs=1)
        recorder.record(0, EventKind.COMPUTE, 0.0, 1.0, 1)  # pre-attach
        recorder.attach_file(path)
        recorder.record(0, EventKind.COMPUTE, 1.0, 2.0, 2)
        assert recorder.flush() == 2  # back-filled + live record
        recorder.close()
        assert len(TraceFileReader(path).read()) == 2

    def test_live_analysis_during_run(self):
        """A callback subscriber observes records as the program runs --
        the tracer-driver shape: analysis attached to the event flow."""
        rt = mp.Runtime(4)
        recorder = TraceRecorder(4)
        live_counts = {"send": 0, "recv": 0}

        def watch(record):
            if record.is_send:
                live_counts["send"] += 1
            elif record.is_recv:
                live_counts["recv"] += 1

        recorder.add_callback(watch)
        lib = WrapperLibrary(rt, recorder)
        assert lib.bus is recorder.bus
        rt.run(ring_program(rounds=2))
        rt.shutdown()
        trace = recorder.snapshot()
        assert live_counts["send"] == len([r for r in trace if r.is_send])
        assert live_counts["recv"] == len([r for r in trace if r.is_recv])
        assert live_counts["send"] == 8  # 4 ranks x 2 rounds

    def test_live_graph_matches_batch(self):
        rt = mp.Runtime(3)
        recorder = TraceRecorder(3)
        graph = TraceGraph(3)
        recorder.subscribe(graph.sink())
        WrapperLibrary(rt, recorder)
        rt.run(ring_program(rounds=1))
        rt.shutdown()
        batch = TraceGraph.from_trace(recorder.snapshot())
        assert graph.events_consumed == batch.events_consumed
        assert sorted(map(str, graph.nodes)) == sorted(map(str, batch.nodes))
