"""Trace diffing and replay-prefix verification."""

from __future__ import annotations

import pytest

from repro import mp
from repro.apps import master_worker_program
from repro.apps import strassen as st
from repro.trace import diff_traces, verify_replay_prefix
from tests.conftest import traced_run


class TestDiffTraces:
    def test_identical_runs(self):
        cfg = st.StrassenConfig(n=8, nprocs=4)
        _, t1 = traced_run(st.strassen_program(cfg), 4)
        _, t2 = traced_run(st.strassen_program(cfg), 4)
        diff = diff_traces(t1, t2, compare_times=True)
        assert diff.identical
        assert diff.as_text() == "traces identical"

    def test_different_programs_diverge(self):
        def prog_a(comm):
            comm.compute(1.0)
            comm.compute(1.0)

        def prog_b(comm):
            comm.compute(1.0)
            if comm.rank == 1:
                comm.send("x", dest=0)
            elif comm.rank == 0:
                comm.recv(source=1)

        _, ta = traced_run(prog_a, 2)
        _, tb = traced_run(prog_b, 2)
        diff = diff_traces(ta, tb)
        assert not diff.identical
        first = diff.first()
        assert first is not None
        assert diff.common_prefix[first.proc] >= 1  # first compute agrees
        assert "diverges at event" in diff.as_text()

    def test_shorter_trace_reports_end(self):
        def short(comm):
            comm.compute(1.0)

        def long(comm):
            comm.compute(1.0)
            comm.compute(1.0)

        _, ts = traced_run(short, 1)
        _, tl = traced_run(long, 1)
        diff = diff_traces(ts, tl)
        assert not diff.identical
        assert diff.first().left is None  # left ended early
        assert "<end of trace>" in diff.as_text()

    def test_width_mismatch_rejected(self):
        _, t2 = traced_run(lambda c: None, 2)
        _, t3 = traced_run(lambda c: None, 3)
        with pytest.raises(ValueError, match="different widths"):
            diff_traces(t2, t3)

    def test_schedules_equivalent_without_times(self):
        """Different policies: same behaviour, different times."""
        cfg = st.StrassenConfig(n=8, nprocs=4)
        _, t1 = traced_run(st.strassen_program(cfg), 4, policy="run_to_block")
        _, t2 = traced_run(st.strassen_program(cfg), 4, policy="virtual_time")
        assert diff_traces(t1, t2).identical


class TestReplayPrefixVerification:
    def test_replay_prefix_verified(self):
        """The §4.2 guarantee, checked mechanically on a wildcard-heavy
        program replayed to a stopline."""
        from repro.debugger import DebugSession

        program = master_worker_program(n_tasks=8)
        session = DebugSession(program, 4)
        session.run()
        original = session.trace()
        anchor = [r for r in original.by_proc(0) if r.is_recv][3]
        stopline = session.set_stopline(anchor.index)
        session.replay()
        replayed = session.trace()
        diff = verify_replay_prefix(
            original, replayed, stopline.thresholds.as_dict()
        )
        assert diff.identical, diff.as_text()
        session.clear_thresholds()
        session.cont()
        session.shutdown()

    def test_detects_a_diverged_replay(self):
        """A steered replay is SUPPOSED to diverge -- the diff proves the
        steering had an effect at exactly the racing receive."""
        from repro.analysis import detect_races, steer_to_alternative
        from repro.instrument import WrapperLibrary
        from repro.trace import TraceRecorder

        program = master_worker_program(n_tasks=6)
        rt = mp.Runtime(4)
        rec = TraceRecorder(4)
        WrapperLibrary(rt, rec)
        rt.run(program)
        rt.shutdown()
        trace = rec.snapshot()
        races = detect_races(trace)
        steered_log = steer_to_alternative(
            rt.comm_log, trace, races[0], races[0].alternatives[0]
        )
        rt2 = mp.Runtime(4, replay_log=steered_log)
        rec2 = TraceRecorder(4)
        WrapperLibrary(rt2, rec2)
        rt2.run(program)
        rt2.shutdown()
        diff = diff_traces(trace, rec2.snapshot())
        assert not diff.identical
        d = next(d for d in diff.divergences if d.proc == races[0].recv.proc)
        # The divergence is at (or before) the racing receive.
        assert d.left is not None and d.left.marker <= races[0].recv.marker


class TestFirstDivergenceLocations:
    def test_jsonable_locations(self):
        """The explorer ships divergence locations across process
        boundaries; every field must be a plain scalar/string."""
        import json

        from repro.trace.diff import first_divergence_locations

        def prog_a(comm):
            comm.compute(1.0)

        def prog_b(comm):
            comm.compute(1.0)
            if comm.rank == 1:
                comm.send("x", dest=0)
            elif comm.rank == 0:
                comm.recv(source=1)

        _, ta = traced_run(prog_a, 2)
        _, tb = traced_run(prog_b, 2)
        locs = first_divergence_locations(diff_traces(ta, tb))
        assert len(locs) == 2
        json.dumps(locs)
        by_proc = {loc["proc"]: loc for loc in locs}
        assert by_proc[0]["left"] is None  # prog_a's rank 0 ended early
        right = by_proc[0]["right"]
        assert right["kind"] == "recv"
        assert (right["src"], right["dst"]) == (1, 0)

    def test_identical_traces_yield_no_locations(self):
        from repro.trace.diff import first_divergence_locations

        _, t1 = traced_run(lambda c: c.compute(1.0), 2)
        _, t2 = traced_run(lambda c: c.compute(1.0), 2)
        assert first_divergence_locations(diff_traces(t1, t2)) == []


class TestResultsEqual:
    def test_tolerant_numeric_leaves(self):
        import numpy as np

        from repro.trace.diff import results_equal

        assert results_equal(1.0, 1.0 + 1e-13)
        assert not results_equal(1.0, 1.1)
        assert results_equal([1, (2.0, 3)], [1, (2.0, 3)])
        assert results_equal(
            {"a": np.arange(3.0)}, {"a": np.arange(3.0) + 1e-13}
        )
        assert not results_equal({"a": 1}, {"b": 1})
        assert not results_equal([1, 2], [1, 2, 3])
        assert not results_equal(np.arange(3.0), np.arange(4.0))

    def test_none_and_type_guards(self):
        from repro.trace.diff import results_equal

        assert results_equal(None, None)
        assert not results_equal(None, 0.0)
        assert not results_equal(True, 1)  # bool is not "the number 1" here
        assert results_equal("same", "same")
        assert not results_equal("same", "different")
