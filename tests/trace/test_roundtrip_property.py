"""Property-style round-trip tests for the trace-file format.

Arbitrary record batches through ``TraceFileWriter`` then back through
``TraceFileReader`` must preserve order, kinds, and payloads -- for the
current (v3, columnar) format, the v2 indexed JSON-lines format, and
legacy v1 files, and whether the
read is a full load, a linear stream, or an indexed window seek.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.mp.datatypes import SourceLocation
from repro.trace import (
    EventKind,
    Trace,
    TraceFileReader,
    TraceFileWriter,
    TraceRecord,
    load_trace,
    save_trace,
)
from repro.trace.tracefile import FORMAT_NAME

KINDS = list(EventKind)


def random_record(rng: random.Random, index: int, nprocs: int) -> TraceRecord:
    """One arbitrary record; ~half carry message fields and payloads."""
    t0 = round(rng.uniform(0, 100), 3)
    kind = rng.choice(KINDS)
    rec = TraceRecord(
        index=index,
        proc=rng.randrange(nprocs),
        kind=kind,
        t0=t0,
        t1=round(t0 + rng.uniform(0, 5), 3),
        marker=index + 1,
        location=SourceLocation(
            f"file{rng.randrange(3)}.py", rng.randrange(1, 500), f"fn{rng.randrange(5)}"
        ),
    )
    if rng.random() < 0.5:
        rec.src = rng.randrange(nprocs)
        rec.dst = rng.randrange(nprocs)
        rec.tag = rng.randrange(100)
        rec.size = rng.randrange(1, 1 << 16)
        rec.seq = rng.randrange(1000)
    if rng.random() < 0.3:
        rec.peer_location = SourceLocation("peer.py", 7, "sender")
        rec.peer_marker = rng.randrange(100)
        rec.peer_time = round(rng.uniform(0, 100), 3)
    if rng.random() < 0.3:
        rec.extra = {"note": f"x{index}", "n": rng.randrange(10)}
    return rec


def make_batch(seed: int, n: int, nprocs: int = 4) -> list[TraceRecord]:
    rng = random.Random(seed)
    return [random_record(rng, i, nprocs) for i in range(n)]


@pytest.mark.parametrize("seed,n", [(0, 1), (1, 17), (2, 100), (3, 613)])
@pytest.mark.parametrize("version", [1, 2, 3])
def test_roundtrip_preserves_everything(tmp_path, seed, n, version):
    batch = make_batch(seed, n)
    path = tmp_path / "t.jsonl"
    with TraceFileWriter(path, nprocs=4, version=version, index_block=64) as w:
        for rec in batch:
            w.write(rec)
    back = list(TraceFileReader(path).iter_records())
    assert back == batch  # order, kinds, every payload field


@pytest.mark.parametrize("seed", [5, 6])
def test_roundtrip_through_flush_boundaries(tmp_path, seed):
    """Flush cadence must not affect the decoded stream."""
    batch = make_batch(seed, 200)
    path = tmp_path / "t.jsonl"
    with TraceFileWriter(path, nprocs=4, auto_flush_every=7) as w:
        for rec in batch:
            w.write(rec)
    assert list(TraceFileReader(path).iter_records()) == batch


@pytest.mark.parametrize("seed", [7, 8, 9])
def test_seek_window_equals_linear_filter(tmp_path, seed):
    """The indexed path answers exactly what the linear path answers."""
    batch = make_batch(seed, 400)
    path = tmp_path / "t.jsonl"
    with TraceFileWriter(path, nprocs=4, index_block=32) as w:
        for rec in batch:
            w.write(rec)
    reader = TraceFileReader(path)
    assert reader.has_index
    rng = random.Random(seed * 31)
    for _ in range(5):
        t_lo = rng.uniform(0, 90)
        t_hi = t_lo + rng.uniform(0, 30)
        procs = rng.choice([None, {0}, {1, 3}])
        indexed = reader.seek_window(t_lo, t_hi, procs)
        linear = reader.seek_window(t_lo, t_hi, procs, use_index=False)
        assert indexed == linear


def test_seek_window_reads_fewer_bytes(tmp_path):
    batch = make_batch(11, 2000)
    path = tmp_path / "t.jsonl"
    with TraceFileWriter(path, nprocs=4, index_block=64) as w:
        for rec in batch:
            w.write(rec)
    reader = TraceFileReader(path)
    reader.seek_window(10.0, 12.0)
    seek_bytes = reader.bytes_read
    reader.seek_window(10.0, 12.0, use_index=False)
    linear_bytes = reader.bytes_read - seek_bytes
    assert 0 < seek_bytes < linear_bytes


def test_v1_file_backward_compat(tmp_path):
    """A legacy v1 file (hand-written, no footer) reads unchanged."""
    batch = make_batch(12, 50)
    path = tmp_path / "legacy.jsonl"
    lines = [json.dumps({"format": FORMAT_NAME, "version": 1, "nprocs": 4})]
    lines += [json.dumps(r.to_jsonable()) for r in batch]
    path.write_text("\n".join(lines) + "\n")
    reader = TraceFileReader(path)
    assert reader.version == 1
    assert not reader.has_index
    assert list(reader.iter_records()) == batch
    # windowing still works through the linear fallback
    got = reader.seek_window(5.0, 20.0, procs={0, 1})
    assert got == [r for r in batch
                   if r.t1 >= 5.0 and r.t0 <= 20.0 and r.proc in {0, 1}]


def test_v1_writer_option_roundtrip(tmp_path):
    tr = Trace(make_batch(13, 30), 4)
    path = tmp_path / "v1.jsonl"
    save_trace(tr, path, version=1)
    header = json.loads(path.open().readline())
    assert header["version"] == 1
    assert list(load_trace(path)) == list(tr)


def test_unclosed_v2_file_falls_back_to_linear(tmp_path):
    """Footer missing (writer never closed / crashed): linear path."""
    batch = make_batch(14, 20)
    path = tmp_path / "t.jsonl"
    w = TraceFileWriter(path, nprocs=4, version=2)
    for rec in batch:
        w.write(rec)
    w.flush()  # records on disk, but no footer yet
    reader = TraceFileReader(path)
    assert reader.version == 2
    assert not reader.has_index
    assert list(reader.iter_records()) == batch
    assert reader.seek_window(0.0, 1000.0) == batch
    w.close()


def test_index_survives_tolerant_read(tmp_path):
    """The footer line is never miscounted as a damaged record."""
    batch = make_batch(15, 10)
    path = tmp_path / "t.jsonl"
    with TraceFileWriter(path, nprocs=4) as w:
        for rec in batch:
            w.write(rec)
    reader = TraceFileReader(path)
    trace, skipped = reader.read_checked(tolerant=True)
    assert len(trace) == 10
    assert skipped == 0


def test_span_from_index(tmp_path):
    batch = make_batch(16, 100)
    path = tmp_path / "t.jsonl"
    with TraceFileWriter(path, nprocs=4) as w:
        for rec in batch:
            w.write(rec)
    reader = TraceFileReader(path)
    before = reader.bytes_read
    t_lo, t_hi = reader.span()
    assert reader.bytes_read == before  # answered from the footer
    assert t_lo == min(r.t0 for r in batch)
    assert t_hi == max(r.t1 for r in batch)
