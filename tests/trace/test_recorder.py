"""The TraceRecorder: collection toggles, filters, file backing."""

from __future__ import annotations

import pytest

from repro.mp.datatypes import SourceLocation
from repro.trace import EventKind, TraceFileReader, TraceRecorder


def put(rec, proc=0, kind=EventKind.COMPUTE, t=0.0, marker=1, **kw):
    return rec.record(proc, kind, t, t + 1.0, marker, **kw)


class TestRecorder:
    def test_records_and_snapshot(self):
        rec = TraceRecorder(nprocs=2)
        put(rec, proc=0)
        put(rec, proc=1, kind=EventKind.SEND, src=1, dst=0, tag=1, seq=0)
        tr = rec.snapshot()
        assert len(tr) == 2
        assert tr[1].kind is EventKind.SEND
        assert [r.index for r in tr] == [0, 1]

    def test_snapshot_is_stable(self):
        rec = TraceRecorder(nprocs=1)
        put(rec)
        tr = rec.snapshot()
        put(rec)
        assert len(tr) == 1  # earlier snapshot unaffected
        assert len(rec.snapshot()) == 2

    def test_global_toggle(self):
        rec = TraceRecorder(nprocs=1)
        rec.set_enabled(False)
        assert put(rec) is None
        rec.set_enabled(True)
        assert put(rec) is not None
        assert rec.dropped == 1

    def test_per_proc_toggle(self):
        rec = TraceRecorder(nprocs=2)
        rec.set_enabled(False, proc=0)
        assert put(rec, proc=0) is None
        assert put(rec, proc=1) is not None
        assert rec.is_enabled(1) and not rec.is_enabled(0)

    def test_kind_filter_constructor(self):
        rec = TraceRecorder(nprocs=1, kinds=[EventKind.SEND])
        assert put(rec, kind=EventKind.COMPUTE) is None
        assert put(rec, kind=EventKind.SEND, src=0, dst=0, tag=0, seq=0) is not None

    def test_kind_filter_setter(self):
        rec = TraceRecorder(nprocs=1)
        rec.set_kind_filter([EventKind.RECV])
        assert put(rec, kind=EventKind.COMPUTE) is None
        rec.set_kind_filter(None)
        assert put(rec, kind=EventKind.COMPUTE) is not None

    def test_location_recorded(self):
        rec = TraceRecorder(nprocs=1)
        loc = SourceLocation("app.py", 42, "work")
        r = put(rec, location=loc)
        assert r.location == loc

    def test_file_backing_with_backfill(self, tmp_path):
        rec = TraceRecorder(nprocs=1)
        put(rec)  # recorded before attach
        rec.attach_file(tmp_path / "t.jsonl")
        put(rec)
        rec.flush()
        back = TraceFileReader(tmp_path / "t.jsonl").read()
        assert len(back) == 2

    def test_double_attach_rejected(self, tmp_path):
        rec = TraceRecorder(nprocs=1)
        rec.attach_file(tmp_path / "a.jsonl")
        with pytest.raises(RuntimeError, match="already attached"):
            rec.attach_file(tmp_path / "b.jsonl")

    def test_flush_without_file_is_noop(self):
        assert TraceRecorder(nprocs=1).flush() == 0

    def test_close_flushes(self, tmp_path):
        rec = TraceRecorder(nprocs=1)
        rec.attach_file(tmp_path / "t.jsonl")
        put(rec)
        rec.close()
        assert len(TraceFileReader(tmp_path / "t.jsonl").read()) == 1
