"""Tolerant trace-file reading and the session export commands."""

from __future__ import annotations

import pytest

from repro.apps import strassen as st
from repro.debugger import CommandInterpreter, DebugSession
from repro.trace import (
    EventKind,
    TraceFileError,
    TraceFileReader,
    TraceFileWriter,
    TraceRecord,
    load_trace,
)


def rec(index, t):
    return TraceRecord(index=index, proc=0, kind=EventKind.COMPUTE,
                       t0=t, t1=t + 1, marker=index + 1)


class TestTolerantReading:
    @pytest.fixture()
    def truncated_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceFileWriter(path, nprocs=1) as writer:
            for i in range(3):
                writer.write(rec(i, float(i)))
        # Simulate a crash mid-write: append half a record.
        with path.open("a") as fh:
            fh.write('{"i": 3, "p": 0, "k": "comp')
        return path

    def test_strict_read_raises(self, truncated_file):
        with pytest.raises(TraceFileError, match="malformed record"):
            TraceFileReader(truncated_file).read()

    def test_tolerant_read_skips(self, truncated_file):
        reader = TraceFileReader(truncated_file)
        trace = reader.read(tolerant=True)
        assert len(trace) == 3
        assert reader.skipped_lines == 1

    def test_skipped_lines_accumulate(self, truncated_file):
        """Cumulative across reads: a rising count across polls of a live
        file is how callers detect repeatedly-torn flushes."""
        reader = TraceFileReader(truncated_file)
        reader.read(tolerant=True)
        reader.read(tolerant=True)
        assert reader.skipped_lines == 2  # cumulative over the reader
        assert reader.last_skipped_lines == 1  # this read alone

    def test_read_checked_reports_per_read_damage(self, truncated_file):
        reader = TraceFileReader(truncated_file)
        trace, skipped = reader.read_checked()
        assert len(trace) == 3
        assert skipped == 1
        _, skipped2 = reader.read_checked()
        assert skipped2 == 1
        assert reader.skipped_lines == 2


class TestExportCommands:
    @pytest.fixture()
    def session(self):
        cfg = st.StrassenConfig(n=8, nprocs=4)
        s = DebugSession(st.strassen_program(cfg), 4)
        interp = CommandInterpreter(s)
        interp.execute("run")
        yield s, interp
        s.shutdown()

    def test_save_trace_roundtrip(self, session, tmp_path):
        s, interp = session
        path = tmp_path / "out.jsonl"
        out = interp.execute(f"save-trace {path}")
        assert "wrote" in out
        back = load_trace(path)
        assert len(back) == len(s.trace())
        assert back.nprocs == 4

    def test_export_svg(self, session, tmp_path):
        _, interp = session
        path = tmp_path / "view.svg"
        out = interp.execute(f"export-svg {path}")
        assert "wrote" in out
        text = path.read_text()
        assert text.startswith("<svg")
        assert "<line" in text

    def test_export_svg_includes_stopline(self, session, tmp_path):
        _, interp = session
        interp.execute("stopline 5")
        path = tmp_path / "view.svg"
        interp.execute(f"export-svg {path}")
        assert "<title>stopline</title>" in path.read_text()

    def test_usage_errors(self, session):
        _, interp = session
        from repro.debugger import CommandError

        with pytest.raises(CommandError, match="usage: save-trace"):
            interp.execute("save-trace")
        with pytest.raises(CommandError, match="usage: export-svg"):
            interp.execute("export-svg a b")
