"""Malformed sharded stores fail loudly, and ``info --json`` is
machine-readable.

Satellite contract: a manifest with an empty shard list, or one naming
a shard file that is gone, raises a clear :class:`TraceFileError` from
every record-access API -- never a bare ``StopIteration`` or
``FileNotFoundError`` that a caller would misread as "empty trace".
"""

from __future__ import annotations

import json
import random

import pytest

from repro.mp.datatypes import SourceLocation
from repro.trace import (
    EventKind,
    TraceFileError,
    TraceFileReader,
    TraceShardWriter,
)
from repro.trace.shard import (
    SHARD_TEMPLATE,
    ShardInfo,
    scan_shard_info,
    write_manifest,
)
from repro.trace.tracefile import main as tracefile_main

NPROCS = 4


def make_batch(seed: int, n: int):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        t0 = round(rng.uniform(0, 50), 3)
        from repro.trace import TraceRecord

        out.append(
            TraceRecord(
                index=i,
                proc=rng.randrange(NPROCS),
                kind=rng.choice(list(EventKind)),
                t0=t0,
                t1=round(t0 + rng.uniform(0, 2), 3),
                marker=i + 1,
                location=SourceLocation("f.py", 1, "fn"),
            )
        )
    return out


def write_store(tmp_path, name="store.trace", n=300):
    path = tmp_path / name
    with TraceShardWriter(path, NPROCS, index_block=64) as w:
        for rec in make_batch(7, n):
            w.write(rec)
    return path


# ----------------------------------------------------------------------
# empty shard list
# ----------------------------------------------------------------------
class TestEmptyShardList:
    @pytest.fixture()
    def empty_manifest(self, tmp_path):
        path = tmp_path / "empty.trace"
        write_manifest(path, NPROCS, [])
        return path

    def test_iter_records_raises_clearly(self, empty_manifest):
        reader = TraceFileReader(empty_manifest)
        with pytest.raises(TraceFileError, match="no shard files"):
            list(reader.iter_records())

    def test_seek_window_raises_clearly(self, empty_manifest):
        reader = TraceFileReader(empty_manifest)
        with pytest.raises(TraceFileError, match="no shard files"):
            reader.seek_window(0.0, 1.0)

    def test_read_all_and_columns_raise_clearly(self, empty_manifest):
        with pytest.raises(TraceFileError, match="no shard files"):
            TraceFileReader(empty_manifest).read_all()
        with pytest.raises(TraceFileError, match="no shard files"):
            TraceFileReader(empty_manifest).read_columns()

    def test_block_entries_raises_clearly(self, empty_manifest):
        with pytest.raises(TraceFileError, match="no shard files"):
            TraceFileReader(empty_manifest).block_entries()


# ----------------------------------------------------------------------
# manifest naming a missing shard file
# ----------------------------------------------------------------------
class TestMissingShardFile:
    @pytest.fixture()
    def broken_store(self, tmp_path):
        path = write_store(tmp_path)
        victim = tmp_path / SHARD_TEMPLATE.format(stem="store", num=0)
        assert victim.is_file()
        victim.unlink()
        return path, victim.name

    def test_iter_records_names_the_missing_file(self, broken_store):
        path, victim = broken_store
        reader = TraceFileReader(path)
        with pytest.raises(TraceFileError, match=victim):
            list(reader.iter_records())

    def test_seek_window_names_the_missing_file(self, broken_store):
        path, victim = broken_store
        reader = TraceFileReader(path)
        # window selection may touch any shard; the full span surely does
        with pytest.raises(TraceFileError, match=victim):
            reader.seek_window(0.0, 100.0)

    def test_error_is_not_filenotfound(self, broken_store):
        path, _ = broken_store
        try:
            TraceFileReader(path).read_all()
        except TraceFileError:
            pass
        else:  # pragma: no cover - the assertion above must fire
            pytest.fail("expected TraceFileError")


# ----------------------------------------------------------------------
# shard recovery scans (the mproc dead-worker fallback)
# ----------------------------------------------------------------------
class TestScanShardInfo:
    def test_missing_file_is_none(self, tmp_path):
        assert scan_shard_info(tmp_path / "nope.trace") is None

    def test_manifest_is_not_a_shard(self, tmp_path):
        path = write_store(tmp_path)
        assert scan_shard_info(path) is None

    def test_scan_matches_manifest_entry(self, tmp_path):
        path = write_store(tmp_path)
        manifest = json.loads(path.read_text())
        entry = ShardInfo.from_jsonable(manifest["shards"][0])
        scanned = scan_shard_info(path.parent / entry.path)
        assert scanned is not None
        assert scanned.records == entry.records
        assert scanned.procs == entry.procs
        assert scanned.t_min == pytest.approx(entry.t_min)
        assert scanned.t_max == pytest.approx(entry.t_max)


# ----------------------------------------------------------------------
# machine-readable info
# ----------------------------------------------------------------------
class TestInfoJson:
    def test_sharded_breakdown(self, tmp_path, capsys):
        path = write_store(tmp_path)
        assert tracefile_main(["info", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sharded"] is True
        assert payload["nprocs"] == NPROCS
        assert payload["records"] == 300
        assert len(payload["shards"]) >= 1
        assert sum(s["records"] for s in payload["shards"]) == 300
        # per-encoding rollup covers every record exactly once
        assert sum(
            e["records"] for e in payload["encodings"].values()
        ) == 300

    def test_single_file_breakdown(self, tmp_path, capsys):
        from repro.trace import TraceFileWriter

        path = tmp_path / "single.trace"
        with TraceFileWriter(path, NPROCS, index_block=64,
                             compression="zlib") as w:
            for rec in make_batch(9, 200):
                w.write(rec)
        assert tracefile_main(["info", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sharded"] is False
        assert payload["records"] == 200
        assert payload["index"]["source"] == "footer"
        encodings = payload["encodings"]
        assert sum(e["records"] for e in encodings.values()) == 200
        # compressed blocks report their on-disk compression ratio
        assert any(
            e.get("compression") is not None for e in encodings.values()
        )

    def test_plain_info_still_works(self, tmp_path, capsys):
        path = write_store(tmp_path)
        assert tracefile_main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "records" in out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)
