"""Format v3: binary columnar blocks, bulk column reads, the parallel
block loader, the recovery CLI, and the writer/seek edge-case fixes.

Compatibility invariants (v1/v2 behavior unchanged) live in
``test_roundtrip_property``; this module covers what v3 adds.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.analysis.history import HistoryIndex
from repro.graphs.tracegraph import TraceGraph
from repro.mp.datatypes import SourceLocation
from repro.trace import (
    ColumnBlock,
    EventKind,
    TraceFileError,
    TraceFileReader,
    TraceFileWriter,
    TraceRecord,
)
from repro.trace.tracefile import main as tracefile_main
from repro.viz.timespace import build_file_diagram, build_window_diagram

KINDS = list(EventKind)


def random_record(rng: random.Random, index: int, nprocs: int) -> TraceRecord:
    t0 = round(rng.uniform(0, 100), 3)
    rec = TraceRecord(
        index=index,
        proc=rng.randrange(nprocs),
        kind=rng.choice(KINDS),
        t0=t0,
        t1=round(t0 + rng.uniform(0, 5), 3),
        marker=index + 1,
        location=SourceLocation(
            f"file{rng.randrange(3)}.py", rng.randrange(1, 500), f"fn{rng.randrange(5)}"
        ),
    )
    if rng.random() < 0.5:
        rec.src = rng.randrange(nprocs)
        rec.dst = rng.randrange(nprocs)
        rec.tag = rng.randrange(100)
        rec.size = rng.randrange(1, 1 << 16)
        rec.seq = rng.randrange(1000)
    if rng.random() < 0.3:
        rec.peer_location = SourceLocation("peer.py", 7, "sender")
        rec.peer_marker = rng.randrange(100)
        rec.peer_time = round(rng.uniform(0, 100), 3)
    if rng.random() < 0.3:
        rec.extra = {"note": f"x{index}", "n": rng.randrange(10)}
    return rec


def make_batch(seed: int, n: int, nprocs: int = 4) -> list[TraceRecord]:
    rng = random.Random(seed)
    return [random_record(rng, i, nprocs) for i in range(n)]


def write_v3(path, batch, nprocs=4, index_block=64, close=True):
    writer = TraceFileWriter(path, nprocs=nprocs, index_block=index_block)
    for rec in batch:
        writer.write(rec)
    if close:
        writer.close()
    return writer


class TestV3Format:
    def test_default_version_is_v3_and_indexed(self, tmp_path):
        path = tmp_path / "t.trace"
        write_v3(path, make_batch(0, 100))
        reader = TraceFileReader(path)
        assert reader.version == 3
        assert reader.has_index
        assert all(b.encoding == "columnar" for b in reader.index.blocks)

    def test_header_is_text_body_is_binary(self, tmp_path):
        path = tmp_path / "t.trace"
        write_v3(path, make_batch(1, 10))
        raw = path.read_bytes()
        header = json.loads(raw.split(b"\n", 1)[0])
        assert header["version"] == 3
        assert header["kinds"] == [k.value for k in EventKind]
        assert b"RTB3" in raw

    def test_read_all_roundtrip(self, tmp_path):
        batch = make_batch(2, 613)
        path = tmp_path / "t.trace"
        write_v3(path, batch)
        assert TraceFileReader(path).read_all() == batch

    def test_footerless_v3_reads_linearly(self, tmp_path):
        """Crashed writer (no footer): the self-delimiting block walk."""
        batch = make_batch(3, 100)
        path = tmp_path / "t.trace"
        w = write_v3(path, batch, close=False)
        w.flush()  # blocks on disk, no footer
        reader = TraceFileReader(path)
        assert reader.version == 3
        assert not reader.has_index
        assert reader.read_all() == batch
        assert reader.seek_window(0.0, 1000.0) == batch
        w.close()

    def test_trailing_garbage_strict_and_tolerant(self, tmp_path):
        batch = make_batch(4, 20)
        path = tmp_path / "t.trace"
        write_v3(path, batch)
        with path.open("ab") as fh:
            fh.write(b"RTB3garbage-that-is-not-a-block")
        with pytest.raises(TraceFileError, match="malformed record"):
            TraceFileReader(path).read()
        reader = TraceFileReader(path)
        trace, skipped = reader.read_checked(tolerant=True)
        assert len(trace) == len(batch)
        assert skipped == 1
        reader.read(tolerant=True)
        assert reader.skipped_lines == 2  # cumulative, like v2

    def test_truncated_final_block_tolerant(self, tmp_path):
        """A torn flush (block cut mid-bytes) drops only that block."""
        batch = make_batch(5, 100)
        path = tmp_path / "t.trace"
        w = write_v3(path, batch, index_block=32, close=False)
        w.flush()
        size = path.stat().st_size
        with path.open("rb+") as fh:
            fh.truncate(size - 11)
        reader = TraceFileReader(path)
        got = reader.read_all(tolerant=True)
        assert reader.last_skipped_lines == 1
        assert got == batch[: len(got)]  # an exact prefix, block-aligned
        assert len(got) == 96  # 3 of 4 blocks survive
        w.close()

    def test_unicode_payloads_roundtrip(self, tmp_path):
        rec = TraceRecord(
            index=0, proc=0, kind=EventKind.COMPUTE, t0=0.0, t1=1.0, marker=1,
            location=SourceLocation("méshページ.py", 3, "søknad"),
            extra={"λ": "данные", "emoji": "🜲"},
        )
        path = tmp_path / "t.trace"
        write_v3(path, [rec], nprocs=1)
        assert TraceFileReader(path).read_all() == [rec]


class TestParallelLoader:
    def test_parallel_equals_serial_read_all(self, tmp_path):
        batch = make_batch(6, 800)
        path = tmp_path / "t.trace"
        write_v3(path, batch, index_block=32)  # 25 blocks
        reader = TraceFileReader(path)
        assert len(reader.index.blocks) >= 4
        assert reader.read_all(parallel=True) == reader.read_all(parallel=False)
        assert reader.read_all(parallel=True) == batch

    def test_parallel_equals_serial_seek_window(self, tmp_path):
        batch = make_batch(7, 800)
        path = tmp_path / "t.trace"
        write_v3(path, batch, index_block=32)
        reader = TraceFileReader(path)
        rng = random.Random(7)
        for _ in range(5):
            t_lo = rng.uniform(0, 90)
            t_hi = t_lo + rng.uniform(0, 30)
            procs = rng.choice([None, {0}, {1, 3}])
            par = reader.seek_window(t_lo, t_hi, procs, parallel=True)
            ser = reader.seek_window(t_lo, t_hi, procs, parallel=False)
            lin = reader.seek_window(t_lo, t_hi, procs, use_index=False)
            assert par == ser == lin

    def test_indexed_window_reads_fewer_bytes_than_linear(self, tmp_path):
        # records ordered in time so blocks have disjoint spans
        batch = make_batch(8, 2000)
        batch.sort(key=lambda r: r.t0)
        for i, rec in enumerate(batch):
            rec.index = i
        path = tmp_path / "t.trace"
        write_v3(path, batch, index_block=64)
        reader = TraceFileReader(path)
        reader.seek_window(10.0, 12.0)
        seek_bytes = reader.bytes_read
        reader.seek_window(10.0, 12.0, use_index=False)
        linear_bytes = reader.bytes_read - seek_bytes
        assert 0 < seek_bytes < linear_bytes


class TestWriterFooterOnException:
    def test_context_manager_writes_footer_when_body_raises(self, tmp_path):
        """Regression: a raising ``with`` body must still produce an
        indexed file (close() runs via __exit__ even on error)."""
        batch = make_batch(9, 50)
        path = tmp_path / "t.trace"
        with pytest.raises(RuntimeError, match="boom"):
            with TraceFileWriter(path, nprocs=4) as w:
                for rec in batch:
                    w.write(rec)
                raise RuntimeError("boom")
        reader = TraceFileReader(path)
        assert reader.has_index
        assert reader.read_all() == batch

    def test_footer_survives_failing_final_flush(self, tmp_path):
        """A v3 flush can fail at encode time (JSON-unserializable
        extra).  close() must still write a footer covering the records
        that made it to disk."""
        batch = make_batch(10, 40)
        poison = TraceRecord(
            index=40, proc=0, kind=EventKind.COMPUTE, t0=0.0, t1=1.0,
            marker=41, extra={"bad": object()},
        )
        path = tmp_path / "t.trace"
        w = TraceFileWriter(path, nprocs=4, index_block=16)
        for rec in batch:
            w.write(rec)
        w.flush()
        w.write(poison)
        with pytest.raises(TypeError):
            w.close()
        reader = TraceFileReader(path)
        assert reader.has_index
        assert reader.index.records == 40
        assert reader.read_all() == batch

    @pytest.mark.parametrize("version", [2, 3])
    def test_double_close_is_idempotent(self, tmp_path, version):
        path = tmp_path / "t.trace"
        w = TraceFileWriter(path, nprocs=2, version=version)
        w.write(TraceRecord(index=0, proc=0, kind=EventKind.COMPUTE,
                            t0=0.0, t1=1.0, marker=1))
        w.close()
        w.close()
        reader = TraceFileReader(path)
        assert reader.index.records == 1


class TestSeekWindowEdgeCases:
    @pytest.fixture()
    def reader(self, tmp_path):
        recs = [
            TraceRecord(index=i, proc=i % 2, kind=EventKind.COMPUTE,
                        t0=float(i), t1=float(i) + 1.0, marker=i + 1)
            for i in range(10)
        ]
        path = tmp_path / "t.trace"
        write_v3(path, recs, nprocs=2, index_block=4)
        return TraceFileReader(path)

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_empty_window_returns_nothing_without_io(self, tmp_path, version):
        batch = make_batch(11, 30)
        path = tmp_path / "t.trace"
        with TraceFileWriter(path, nprocs=4, version=version) as w:
            for rec in batch:
                w.write(rec)
        reader = TraceFileReader(path)
        before = reader.bytes_read
        assert reader.seek_window(5.0, 1.0) == []  # t_lo > t_hi
        assert reader.bytes_read == before  # answered without touching disk

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_empty_procs_returns_nothing_without_io(self, tmp_path, version):
        batch = make_batch(12, 30)
        path = tmp_path / "t.trace"
        with TraceFileWriter(path, nprocs=4, version=version) as w:
            for rec in batch:
                w.write(rec)
        reader = TraceFileReader(path)
        before = reader.bytes_read
        assert reader.seek_window(0.0, 100.0, procs=set()) == []
        assert reader.bytes_read == before

    def test_exact_boundaries_inclusive(self, reader):
        # record 3 spans [3, 4]: t1 == t_lo and t0 == t_hi both hit
        got = reader.seek_window(4.0, 4.0)
        assert sorted(r.index for r in got) == [3, 4]
        assert reader.seek_window(4.0, 4.0) == reader.seek_window(
            4.0, 4.0, use_index=False
        )

    def test_point_window_on_gap(self, reader):
        assert reader.seek_window(-5.0, -1.0) == []
        assert reader.seek_window(200.0, 300.0) == []

    def test_proc_filter(self, reader):
        got = reader.seek_window(0.0, 100.0, procs={1})
        assert [r.index for r in got] == [1, 3, 5, 7, 9]


class TestReadColumns:
    def test_columns_match_records(self, tmp_path):
        batch = make_batch(13, 500)
        path = tmp_path / "t.trace"
        write_v3(path, batch, index_block=64)
        reader = TraceFileReader(path)
        block = reader.read_columns()
        assert isinstance(block, ColumnBlock)
        assert len(block) == len(batch)
        assert block.to_records() == batch
        assert block.columns["t0"].tolist() == [r.t0 for r in batch]

    def test_windowed_columns_match_seek_window(self, tmp_path):
        batch = make_batch(14, 500)
        path = tmp_path / "t.trace"
        write_v3(path, batch, index_block=64)
        reader = TraceFileReader(path)
        block = reader.read_columns(t_lo=20.0, t_hi=40.0, procs={0, 2})
        assert block.to_records() == reader.seek_window(20.0, 40.0, {0, 2})

    def test_degenerate_window_columns_empty(self, tmp_path):
        path = tmp_path / "t.trace"
        write_v3(path, make_batch(15, 50))
        reader = TraceFileReader(path)
        assert len(reader.read_columns(t_lo=5.0, t_hi=1.0)) == 0
        assert len(reader.read_columns(procs=set())) == 0

    @pytest.mark.parametrize("version", [1, 2])
    def test_v1_v2_bridge(self, tmp_path, version):
        batch = make_batch(16, 120)
        path = tmp_path / "t.trace"
        with TraceFileWriter(path, nprocs=4, version=version) as w:
            for rec in batch:
                w.write(rec)
        block = TraceFileReader(path).read_columns()
        assert block.to_records() == batch

    def test_footerless_columns(self, tmp_path):
        batch = make_batch(17, 90)
        path = tmp_path / "t.trace"
        w = write_v3(path, batch, close=False)
        w.flush()
        assert TraceFileReader(path).read_columns().to_records() == batch
        w.close()


class TestBulkConsumers:
    def make_file(self, tmp_path, seed=18, n=400):
        batch = make_batch(seed, n)
        path = tmp_path / "t.trace"
        write_v3(path, batch, index_block=64)
        return path, batch

    def test_history_index_extend_columns(self, tmp_path):
        path, batch = self.make_file(tmp_path)
        reader = TraceFileReader(path)
        bulk = HistoryIndex(nprocs=reader.nprocs)
        bulk.extend_columns(reader.read_columns())
        ref = HistoryIndex(nprocs=reader.nprocs)
        ref.extend_many(batch)
        assert len(bulk) == len(ref)
        assert list(bulk.records) == list(ref.records)
        assert bulk.span == ref.span
        assert [p.send.index for p in bulk.message_pairs()] == [
            p.send.index for p in ref.message_pairs()
        ]
        assert (bulk.clocks == ref.clocks).all()
        for p in range(4):
            assert list(bulk.by_proc(p)) == list(ref.by_proc(p))

    def test_history_index_from_file(self, tmp_path):
        path, batch = self.make_file(tmp_path, seed=19)
        idx = HistoryIndex.from_file(TraceFileReader(path))
        assert list(idx.records) == batch

    def test_tracegraph_from_file(self, tmp_path):
        path, batch = self.make_file(tmp_path, seed=20)
        via_file = TraceGraph.from_file(TraceFileReader(path))
        via_records = TraceGraph.from_records(batch, nprocs=4)
        assert via_file.events_consumed == via_records.events_consumed
        assert sorted(map(str, via_file.nodes)) == sorted(
            map(str, via_records.nodes)
        )
        assert len(via_file.arcs()) == len(via_records.arcs())

    def test_timespace_file_diagram(self, tmp_path):
        path, batch = self.make_file(tmp_path, seed=21)
        reader = TraceFileReader(path)
        diagram = build_file_diagram(reader)
        from repro.viz.timespace import build_diagram

        ref = build_diagram(batch, nprocs=4)
        assert len(diagram.bars) == len(ref.bars)
        assert len(diagram.messages) == len(ref.messages)

    def test_timespace_window_diagram_v3(self, tmp_path):
        path, batch = self.make_file(tmp_path, seed=22)
        reader = TraceFileReader(path)
        diagram = build_window_diagram(reader, 10.0, 30.0)
        wanted = reader.seek_window(10.0, 30.0)
        assert {b.record.marker for b in diagram.bars} <= {
            r.marker for r in wanted
        }
        assert len(diagram.bars) == sum(
            1 for r in wanted
            if r.t1 > r.t0
            and r.kind not in (EventKind.PROC_START, EventKind.PROC_EXIT)
        )


class TestSinkVersionSelection:
    def test_filesink_version_parameter(self, tmp_path):
        from repro.trace import FileSink

        for version in (2, 3):
            path = tmp_path / f"v{version}.trace"
            sink = FileSink(path, nprocs=2, version=version)
            sink.emit(TraceRecord(index=0, proc=0, kind=EventKind.COMPUTE,
                                  t0=0.0, t1=1.0, marker=1))
            sink.close()
            assert TraceFileReader(path).version == version

    def test_recorder_attach_file_version(self, tmp_path):
        from repro.trace import TraceRecorder

        rec = TraceRecorder(2)
        path = tmp_path / "t.trace"
        writer = rec.attach_file(path, version=2)
        assert writer.version == 2
        rec.close()
        assert TraceFileReader(path).version == 2


class TestCLI:
    def make_file(self, tmp_path, n=150, version=3, close=True):
        batch = make_batch(23, n)
        path = tmp_path / "t.trace"
        w = TraceFileWriter(path, nprocs=4, version=version, index_block=32)
        for rec in batch:
            w.write(rec)
        if close:
            w.close()
        else:
            w.flush()
        return path, batch, w

    def test_info_indexed(self, tmp_path, capsys):
        path, batch, _ = self.make_file(tmp_path)
        assert tracefile_main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "v3" in out and "150" in out and "columnar" in out

    def test_info_footerless(self, tmp_path, capsys):
        path, batch, w = self.make_file(tmp_path, close=False)
        assert tracefile_main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "linear scan" in out and "reindex" in out
        w.close()

    @pytest.mark.parametrize("src_v,dst_v", [(2, 3), (3, 2), (1, 3), (3, 1)])
    def test_convert_roundtrip(self, tmp_path, capsys, src_v, dst_v):
        path, batch, _ = self.make_file(tmp_path, version=src_v)
        dst = tmp_path / "out.trace"
        code = tracefile_main(
            ["convert", str(path), str(dst), "--to", str(dst_v)]
        )
        assert code == 0
        reader = TraceFileReader(dst)
        assert reader.version == dst_v
        assert reader.read_all() == batch

    def test_reindex_recovers_footerless_v3(self, tmp_path, capsys):
        path, batch, w = self.make_file(tmp_path, close=False)
        assert not TraceFileReader(path).has_index
        assert tracefile_main(["reindex", str(path)]) == 0
        reader = TraceFileReader(path)
        assert reader.has_index
        assert reader.index.records == len(batch)
        assert reader.read_all() == batch
        # the rebuilt index answers windows identically
        assert reader.seek_window(10.0, 30.0) == reader.seek_window(
            10.0, 30.0, use_index=False
        )
        w.close()

    def test_reindex_truncates_torn_tail(self, tmp_path, capsys):
        path, batch, w = self.make_file(tmp_path, close=False)
        with path.open("ab") as fh:
            fh.write(b"torn-tail-bytes")
        assert tracefile_main(["reindex", str(path)]) == 0
        assert "dropped" in capsys.readouterr().out
        reader = TraceFileReader(path)
        assert reader.has_index
        assert reader.read_all() == batch
        w.close()

    def test_reindex_recovers_footerless_v2(self, tmp_path, capsys):
        path, batch, w = self.make_file(tmp_path, version=2, close=False)
        with path.open("a") as fh:
            fh.write('{"i": 999, "p": 0, "k": "comp')  # torn last line
        assert tracefile_main(["reindex", str(path), "--index-block", "32"]) == 0
        reader = TraceFileReader(path)
        assert reader.has_index
        assert reader.version == 2
        assert reader.read_all() == batch
        assert reader.seek_window(10.0, 30.0) == reader.seek_window(
            10.0, 30.0, use_index=False
        )
        w.close()

    def test_reindex_already_indexed_is_noop(self, tmp_path, capsys):
        path, _, _ = self.make_file(tmp_path)
        before = path.read_bytes()
        assert tracefile_main(["reindex", str(path)]) == 0
        assert "already indexed" in capsys.readouterr().out
        assert path.read_bytes() == before

    def test_reindex_v1_refused(self, tmp_path, capsys):
        path, _, _ = self.make_file(tmp_path, version=1)
        assert tracefile_main(["reindex", str(path)]) == 2
        assert "convert" in capsys.readouterr().err

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert tracefile_main(["info", str(tmp_path / "nope.trace")]) == 1
        assert "error" in capsys.readouterr().err

    def test_module_is_executable(self, tmp_path):
        import os
        import subprocess
        import sys

        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ, PYTHONPATH=src_dir)
        path, batch, _ = self.make_file(tmp_path)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.trace.tracefile", "info", str(path)],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0
        assert "v3" in proc.stdout
