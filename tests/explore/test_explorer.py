"""The schedule-space exploration driver, end to end.

The acceptance bar: pointed at the demo app with a seeded
schedule-dependent bug, the explorer finds the bug with no human in the
loop and reports the forcing log that reproduces it plus the first
divergent event per process.
"""

from __future__ import annotations

import json

import pytest

from repro.apps import reference_result, schedbug_program
from repro.explore import (
    BaseRunFailed,
    ExploreContext,
    MprocReplayExecutor,
    ScheduleStatus,
    explore,
    make_executor,
    run_base,
    schedule_candidates,
)
from repro.explore.__main__ import main, resolve_app

NPROCS = 4
N_TASKS = 6


def explore_mode(mode: str, **kw):
    kw.setdefault("depth", 1)
    kw.setdefault("program_name", f"schedbug:{mode}")
    return explore(
        schedbug_program(n_tasks=N_TASKS, mode=mode, task_cost=1.0),
        NPROCS,
        **kw,
    )


class TestFindsSeededBugs:
    def test_unsafe_mode_divergence_found(self):
        report = explore_mode("unsafe")
        assert report.schedule_sensitive
        assert report.counts["divergent"] > 0
        assert report.races_at_root > 0
        worst = report.worst()
        assert worst.status is ScheduleStatus.DIVERGENT
        # The report carries everything needed to reproduce the bug:
        assert worst.forcing_log["recv_matches"]
        div = worst.first_divergence()
        assert div is not None
        assert div["proc"] == 0  # the master's fold diverges
        assert "SCHEDULE-SENSITIVE" in report.as_text()

    def test_safe_mode_certified_clean(self):
        report = explore_mode("safe")
        assert not report.schedule_sensitive
        assert report.explored > 0
        assert all(o.status is ScheduleStatus.CLEAN for o in report.outcomes)
        assert all(
            o.result_repr == repr(reference_result(N_TASKS))
            for o in report.outcomes
        )
        assert "schedule-insensitive" in report.as_text()

    def test_crash_mode_reports_the_raise(self):
        report = explore_mode("crash")
        crashes = [
            o for o in report.outcomes if o.status is ScheduleStatus.CRASH
        ]
        assert crashes
        assert any("finished before task 0" in (o.error or "") for o in crashes)
        assert report.worst().status is ScheduleStatus.CRASH

    def test_deadlock_mode_reports_blocked_waits(self):
        report = explore_mode("deadlock")
        stuck = [
            o for o in report.outcomes if o.status is ScheduleStatus.DEADLOCK
        ]
        assert stuck
        assert all(o.blocked for o in stuck)

    def test_outcome_describe_names_the_steer(self):
        report = explore_mode("unsafe")
        text = report.worst().describe()
        assert "steer: p0 recv marker" in text
        assert "first divergence" in text
        assert "forcing log" in text


class TestDriverMechanics:
    def test_depth_two_expands_and_dedups(self):
        shallow = explore_mode("unsafe", depth=1)
        deep = explore_mode("unsafe", depth=2, max_schedules=48)
        assert deep.explored + deep.converged > shallow.explored
        assert any(o.depth == 2 for o in deep.outcomes)
        assert deep.deduped > 0  # depth-2 candidates repeat forced prefixes

    def test_budget_leaves_pending(self):
        report = explore_mode("unsafe", max_schedules=2)
        assert report.explored + report.converged == 2
        assert report.pending > 0

    def test_serial_and_mproc_agree_at_depth_one(self):
        """At depth 1 both executors replay the same candidate set, so
        the classification counts must match exactly."""
        serial = explore_mode("unsafe", batch="serial")
        pooled = explore_mode("unsafe", batch="mproc", workers=2)
        assert pooled.batch == "mproc"
        assert pooled.counts == serial.counts
        assert pooled.explored == serial.explored
        assert pooled.converged == serial.converged

    def test_failing_base_run_rejected(self):
        def broken(comm):
            raise RuntimeError("dead on arrival")

        with pytest.raises(BaseRunFailed, match="did not finish"):
            explore(broken, 2)

    def test_parameter_validation(self):
        prog = schedbug_program(n_tasks=4, task_cost=1.0)
        with pytest.raises(ValueError, match="depth"):
            explore(prog, NPROCS, depth=0)
        with pytest.raises(ValueError, match="max_schedules"):
            explore(prog, NPROCS, max_schedules=0)

    def test_executor_factory_validation(self):
        ctx = ExploreContext(
            program=schedbug_program(n_tasks=4, task_cost=1.0), nprocs=NPROCS
        )
        base = run_base(ctx)
        with pytest.raises(ValueError, match="unknown batch mode"):
            make_executor("threads", ctx, base)
        with pytest.raises(ValueError, match=">= 1 worker"):
            MprocReplayExecutor(ctx, base, workers=0)

    def test_candidates_are_jsonable(self):
        ctx = ExploreContext(
            program=schedbug_program(n_tasks=N_TASKS, task_cost=1.0),
            nprocs=NPROCS,
        )
        base = run_base(ctx)
        candidates = schedule_candidates(base, ctx)
        assert candidates
        for cand in candidates:
            json.dumps(cand["log"])  # crosses the pool queues as-is
            assert cand["steer"].startswith("p0 recv marker")
        # One fingerprint per candidate: the dedup key separates them.
        fps = {cand["fingerprint"] for cand in candidates}
        assert len(fps) == len(candidates)

    def test_report_is_jsonable(self):
        report = explore_mode("unsafe")
        blob = json.dumps(report.to_jsonable())
        parsed = json.loads(blob)
        assert parsed["schedule_sensitive"] is True
        assert parsed["explored"] == report.explored
        assert parsed["outcomes"][0]["forcing_log"]["recv_matches"]


class TestCli:
    def test_safe_app_exits_zero(self, capsys):
        assert main(["--app", "schedbug:safe", "--nprocs", "4", "--depth", "1"]) == 0
        assert "schedule-insensitive" in capsys.readouterr().out

    def test_unsafe_app_exits_one(self, capsys):
        assert main(["--app", "schedbug", "--nprocs", "4", "--depth", "1"]) == 1
        assert "SCHEDULE-SENSITIVE" in capsys.readouterr().out

    def test_json_report_written(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            [
                "--app",
                "schedbug:unsafe",
                "--nprocs",
                "4",
                "--depth",
                "1",
                "--json",
                str(out),
                "--verbose",
            ]
        )
        assert code == 1
        parsed = json.loads(out.read_text())
        assert parsed["program"] == "schedbug:unsafe"
        assert parsed["counts"]["divergent"] > 0

    def test_resolve_app_errors(self):
        with pytest.raises(SystemExit, match="unknown schedbug mode"):
            resolve_app("schedbug:typo", 4, 0)
        with pytest.raises(SystemExit, match="unknown app"):
            resolve_app("no_such_app", 4, 0)
        with pytest.raises(SystemExit, match="takes no option"):
            resolve_app("master_worker:fast", 4, 0)
