#!/usr/bin/env python3
"""The paper's worked debugging session (Figures 5, 6, 7), as a script.

A distributed Strassen matrix multiply has a one-character bug: in
``matr_send`` the destination of the second operand send is computed
with ``jres`` where it should be ``jres + 1``.  On 8 processes the
program deadlocks: worker 7 never receives its second operand, and
process 0 blocks waiting for worker 7's result.

The session below retraces the paper:

* Figure 5 -- the run hangs; the trace shows processes 0 and 7 blocked
  in receives waiting for each other;
* Figure 6 -- zooming in: workers 1-6 received two messages each,
  worker 7 only one; the matching analysis pins the missed message;
* Figure 7 -- a stopline before the first send, a controlled replay,
  and a few steps land on the send with the wrong destination.

Run:  python examples/debug_deadlock.py
"""

from __future__ import annotations

from pathlib import Path

from repro.apps import strassen as st
from repro.debugger import DebugSession
from repro.viz import build_diagram, render_ascii, save_svg

OUT_DIR = Path(__file__).resolve().parent / "output"


def main() -> None:
    cfg = st.StrassenConfig(n=16, nprocs=8, buggy=True)
    session = DebugSession(st.strassen_program(cfg), 8)

    # ------------------------------------------------------------------
    print("=== Figure 5: the run deadlocks ===")
    summary = session.run()
    print(summary.describe())
    print()
    print(session.deadlock_report().as_text())

    # ------------------------------------------------------------------
    print("\n=== the time-space view of the hang ===")
    trace = session.trace()
    diagram = build_diagram(trace)
    print(render_ascii(diagram, columns=90))

    print("\n=== Figure 6: zoom in on the message bundle ===")
    # Workers 1-6 show the tick (2 receives); worker 7 is missing one.
    counts = trace.recv_counts()
    for rank in range(8):
        tick = "two operands" if counts[rank] == 2 else f"{counts[rank]} receive(s)"
        print(f"  p{rank}: {tick}")
    report = session.matching_report()
    print()
    print(report.as_text())

    # ------------------------------------------------------------------
    print("\n=== Figure 6 (cont.): set a stopline before the first send ===")
    first_send = next(r for r in trace.by_proc(0) if r.is_send)
    stopline = session.set_stopline(first_send.index)
    print(stopline.describe())

    diagram.set_stopline(stopline.time)
    OUT_DIR.mkdir(exist_ok=True)
    save_svg(diagram, OUT_DIR / "figure6_stopline.svg")

    # ------------------------------------------------------------------
    print("\n=== Figure 7: replay to the stopline and step to the bug ===")
    summary = session.replay()
    print(summary.describe())
    session.clear_thresholds()

    # Step process 0 through matr_send: watch each send's destination.
    expected_dest = {st.TAG_OPERAND_A: 1, st.TAG_OPERAND_B: 1}
    for _ in range(8):
        session.step(0)
        sends = [r for r in session.trace().by_proc(0) if r.is_send]
        if not sends:
            continue
        last = sends[-1]
        want = expected_dest.get(last.tag)
        note = ""
        if want is not None and last.dst != want:
            note = f"   <-- BUG: expected dest={want} (jres+1), got {last.dst} (jres)"
        print(
            f"  step: send tag={last.tag} -> p{last.dst} "
            f"from {last.location}{note}"
        )
        if note:
            print(
                "\nDiagnosis: in matr_send, the second operand's destination"
                "\nis computed as `jres % n_workers` -- it must be"
                " `1 + (jres % n_workers)`."
            )
            break

    session.shutdown()
    print(f"\nSVG with stopline written to {OUT_DIR / 'figure6_stopline.svg'}")


if __name__ == "__main__":
    main()
