#!/usr/bin/env python3
"""A tour of the three instrumentation methods (paper §2) + extensions.

The paper offers three ways to acquire execution history, trading user
effort against resolution and overhead.  This example runs the *same*
program under each method and shows what lands in the trace:

1. **PMPI wrappers** (§2.3) -- link-and-go; communication events only.
2. **uinst** (§2.2) -- automatic function-entry monitoring through the
   per-thread profile hook; adds FUNC_ENTRY/EXIT records.
3. **AIMS source transform** (§2.1) -- rewrite the source; arbitrary
   resolution down to loops and call sites, visible transformed code,
   and flush-on-demand trace files.
4. **Dyninst-style patching** (§6) -- debug-time instrumentation with no
   rebuild and no profile hook.

Along the way it uses a sub-communicator (``comm.split``) so the trace
shows group collectives, and writes/reads a trace file.

Run:  python examples/instrumentation_tour.py
"""

from __future__ import annotations

from pathlib import Path

from repro import mp
from repro.instrument import (
    AimsMonitor,
    DynPatcher,
    Uinst,
    WrapperLibrary,
    instrumented_text,
    lifecycle_wrapper,
    load_instrumented_module,
)
from repro.trace import TraceFileReader, TraceRecorder

OUT_DIR = Path(__file__).resolve().parent / "output"

#: The computational kernel, as source (the AIMS method rewrites it).
KERNEL_SRC = '''
def smooth(values, rounds):
    """A toy relaxation over a list of floats."""
    for _ in range(rounds):
        nxt = list(values)
        for i in range(1, len(values) - 1):
            nxt[i] = (values[i - 1] + values[i] + values[i + 1]) / 3.0
        values = nxt
    return values
'''

exec(compile(KERNEL_SRC, __file__, "exec"))  # defines smooth() here too


def make_program(kernel):
    """An SPMD program: halo exchange in a sub-communicator + kernel."""

    def prog(comm):
        # Pair up ranks via a sub-communicator (even/odd partners).
        sub = comm.split(color=comm.rank // 2)
        values = [float(comm.rank)] * 8
        if sub.size == 2:
            sub.send(values[-1], dest=1 - sub.rank, tag=1)
            values[0] = sub.recv(source=1 - sub.rank, tag=1)
        comm.compute(3.0, label="relax")
        values = kernel(values, rounds=2)
        total = comm.allreduce(sum(values))
        return round(total, 3)

    return prog


def summarize(name: str, trace) -> None:
    counts = trace.counts_by_kind()
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:6]
    shown = ", ".join(f"{k.value}:{n}" for k, n in top)
    print(f"  {name:12s} {len(trace):4d} records   ({shown})")


def main() -> None:
    nprocs = 4
    OUT_DIR.mkdir(exist_ok=True)

    print("=== 1. PMPI wrapper library: communication history only ===")
    rt = mp.Runtime(nprocs)
    rec = TraceRecorder(nprocs)
    WrapperLibrary(rt, rec)
    rt.run(make_program(smooth), target_wrappers=[lifecycle_wrapper(rec)])  # noqa: F821
    rt.shutdown()
    summarize("wrappers", rec.snapshot())

    print("\n=== 2. uinst: + automatic function entries ===")
    rt = mp.Runtime(nprocs)
    rec = TraceRecorder(nprocs)
    WrapperLibrary(rt, rec)
    uinst = Uinst(rt, rec)
    uinst.register_function(smooth)  # noqa: F821
    rt.run(make_program(smooth), target_wrappers=[uinst.target_wrapper()])  # noqa: F821
    rt.shutdown()
    summarize("uinst", rec.snapshot())
    print(f"  ({uinst.entry_count} monitored entries)")

    print("\n=== 3. AIMS source transform: down to loops and call sites ===")
    print("  transformed source (first lines):")
    for line in instrumented_text(
        KERNEL_SRC, constructs=("function", "loop")
    ).splitlines()[:6]:
        print("    " + line)
    rt = mp.Runtime(nprocs)
    rec = TraceRecorder(nprocs)
    trace_path = OUT_DIR / "aims_trace.trace"  # v3: binary columnar
    rec.attach_file(trace_path)
    WrapperLibrary(rt, rec)
    monitor = AimsMonitor(rt, rec)
    module = load_instrumented_module(
        KERNEL_SRC, monitor, constructs=("function", "loop")
    )
    rt.run(make_program(module.smooth))
    rec.flush()  # the on-demand flush (§2.1)
    rt.shutdown()
    summarize("aims", rec.snapshot())
    rec.close()  # finalize: writes the v3 index footer
    reader = TraceFileReader(trace_path)
    reread = reader.read()
    print(
        f"  trace file: {trace_path.name} holds {len(reread)} records"
        f" (indexed: {reader.has_index})"
    )

    print("\n=== 4. Dyninst-style patching: no rebuild, no hook ===")
    import sys

    this_module = sys.modules[__name__]
    rt = mp.Runtime(nprocs)
    rec = TraceRecorder(nprocs)
    WrapperLibrary(rt, rec)
    with DynPatcher(rt, rec) as patcher:
        patcher.patch_function(this_module, "smooth")
        rt.run(make_program(this_module.smooth))
    rt.shutdown()
    summarize("dyninst", rec.snapshot())
    print(f"  ({patcher.entry_count} patched entries; function restored)")


if __name__ == "__main__":
    main()
