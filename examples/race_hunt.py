#!/usr/bin/env python3
"""Races, replay, and the command-line debugger on a master/worker pool.

A self-scheduling master hands tasks to workers and collects results
with ``MPI_ANY_SOURCE`` -- the canonical message race.  This example:

1. detects the races statically from one trace (§4.4 race detection);
2. shows empirically that different schedules produce different
   matchings, and that a recorded CommLog *forces* any schedule back to
   the original matching (§4.2 nondeterminism control);
3. drives the same investigation through the text command interpreter,
   the way a p2d2 user would click through it.

Run:  python examples/race_hunt.py
"""

from __future__ import annotations

from repro import mp
from repro.analysis import detect_races, explore_schedules, matching_fingerprint
from repro.apps import master_worker_program
from repro.debugger import CommandInterpreter, DebugSession

N_TASKS = 10
NPROCS = 5


def main() -> None:
    program = master_worker_program(n_tasks=N_TASKS)

    # ------------------------------------------------------------------
    print("=== 1. static race detection from one trace ===")
    session = DebugSession(program, NPROCS)
    session.run()
    trace = session.trace()
    races = detect_races(trace)
    print(f"{len(races)} racing receives found on the master")
    for race in races[:3]:
        print("  " + race.describe())
    session.shutdown()

    # ------------------------------------------------------------------
    print("\n=== 2. schedules change the matching; replay pins it ===")
    outcomes = explore_schedules(program, NPROCS, seeds=range(12))
    print(f"12 random schedules produced {len(outcomes)} distinct matchings")

    rt_orig = mp.Runtime(NPROCS, policy="random", seed=3)
    rt_orig.run(program)
    original = matching_fingerprint(rt_orig.comm_log)
    rt_orig.shutdown()

    rt_replay = mp.Runtime(NPROCS, policy="random", seed=99,
                           replay_log=rt_orig.comm_log)
    rt_replay.run(program)
    rt_replay.shutdown()
    forced = matching_fingerprint(rt_replay.comm_log)
    print("replay under a different schedule reproduces the matching:",
          forced == original)
    assert forced == original

    # ------------------------------------------------------------------
    print("\n=== 3. the same hunt through debugger commands ===")
    session = DebugSession(program, NPROCS)
    interp = CommandInterpreter(session)
    for line in (
        "threshold 0 8",
        "run",
        "where 0",
        "states",
        "threshold 0 off",
        "continue",
        "trace 6",
        "matching",
    ):
        print(f"(p2d2) {line}")
        out = interp.execute(line)
        if out:
            print("\n".join("    " + ln for ln in out.splitlines()))
    print(f"final results: {session.results()[0]}")
    session.shutdown()


if __name__ == "__main__":
    main()
