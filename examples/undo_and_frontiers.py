#!/usr/bin/env python3
"""Parallel undo and past/future frontiers on the LU pipeline (Figure 8).

Part A drives the §4.2 *undo*: step a pipelined solver forward past the
interesting point, realize it, and undo -- a controlled replay returns
every process to the markers recorded at the previous stop.

Part B reproduces Figure 8: pick an event on a middle rank of the LU
(SSOR) pipeline, compute its past and future frontiers, display the
concurrency region between them, and derive frontier *stoplines*.

Run:  python examples/undo_and_frontiers.py
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_frontiers, compute_causal_order
from repro.apps import LUConfig, lu_program
from repro.debugger import DebugSession, StoplinePlacement
from repro.viz import build_diagram, render_ascii, save_svg

OUT_DIR = Path(__file__).resolve().parent / "output"


def main() -> None:
    cfg = LUConfig(grid=16, nprocs=8, sweeps=3)

    # ==================================================================
    print("=== Part A: parallel undo ===")
    session = DebugSession(lu_program(cfg), 8)
    session.set_threshold(0, 5)
    session.run()
    print("stopped early:   ", dict(session.markers().as_dict()))

    session.set_threshold(0, 15)
    session.cont()
    print("stepped too far: ", dict(session.markers().as_dict()))

    print("undo...")
    session.undo()
    print("back to:         ", dict(session.markers().as_dict()))

    # Finish the run and keep the full trace for Part B.
    session.clear_thresholds()
    session.cont()
    residuals = session.results()[0]
    print(f"solver residual history: {[f'{r:.3f}' for r in residuals]}")
    trace = session.trace()
    session.shutdown()

    # ==================================================================
    print("\n=== Part B: Figure 8 -- frontiers of a selected event ===")
    order = compute_causal_order(trace)
    # "The user clicked at the point indicated by the circle": a receive
    # in the middle of the pipeline.
    target = [r for r in trace.by_proc(4) if r.is_recv][2]
    print(f"selected event: {target}")

    fa = analyze_frontiers(trace, target.index, order)
    print("\nper-process frontiers (times):")
    for p in range(8):
        past = fa.past_frontier.event(p)
        fut = fa.future_frontier.event(p)
        past_s = f"t={past.t1:8.2f}" if past else "   --   "
        fut_s = f"t={fut.t0:8.2f}" if fut else "   --   "
        print(f"  p{p}: last-affecting {past_s}   first-affected {fut_s}")

    conc = fa.concurrency_events()
    print(f"\nconcurrency region: {len(conc)} events between the frontiers")

    diagram = build_diagram(trace)
    diagram.set_frontiers(fa.past_frontier.times(), fa.future_frontier.times())
    print()
    print(render_ascii(diagram, columns=90))

    OUT_DIR.mkdir(exist_ok=True)
    save_svg(diagram, OUT_DIR / "figure8_frontiers.svg")
    print(f"\nSVG written to {OUT_DIR / 'figure8_frontiers.svg'}")

    # Frontier stoplines: the §4.1 alternative placements.
    session2 = DebugSession(lu_program(cfg), 8)
    session2.run()
    for placement in (StoplinePlacement.PAST_FRONTIER, StoplinePlacement.FUTURE_FRONTIER):
        # Re-pick the event against the current (full) trace: each replay
        # truncates history to the stopline, so finish the run first.
        if not session2.finished:
            session2.clear_thresholds()
            session2.cont()
        tr2 = session2.trace()
        target2 = [r for r in tr2.by_proc(4) if r.is_recv][2]
        sl = session2.set_stopline(target2.index, placement)
        print(f"\n{sl.describe()}")
        summary = session2.replay()
        print(f"  replay -> {summary.outcome.value}; markers "
              f"{session2.markers().as_dict()}")
    session2.shutdown()


if __name__ == "__main__":
    main()
