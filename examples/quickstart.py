#!/usr/bin/env python3
"""Quickstart: run a message-passing program, trace it, and look around.

This walks the core loop of the library in five minutes:

1. write an SPMD program against the mpi4py-flavoured ``Comm`` API;
2. run it under the simulated runtime with automatic (PMPI-wrapper)
   instrumentation;
3. inspect the trace: events, matched messages, per-process timings;
4. draw the time-space diagram in the terminal and as SVG;
5. set a marker threshold and watch the debugger stop the program
   mid-flight.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro.debugger import DebugSession
from repro.viz import build_diagram, render_ascii, save_svg

OUT_DIR = Path(__file__).resolve().parent / "output"


def ring_reduce(comm):
    """Each rank contributes rank+1; a token accumulates around the ring,
    then the total is broadcast back."""
    if comm.rank == 0:
        comm.send(1, dest=1, tag=0)  # seed the token with rank 0's value
        total = comm.recv(source=comm.size - 1, tag=0)
        return comm.bcast(total, root=0)
    token = comm.recv(source=comm.rank - 1, tag=0)
    comm.compute(2.0, label="local-work")
    comm.send(token + comm.rank + 1, dest=(comm.rank + 1) % comm.size, tag=0)
    return comm.bcast(None, root=0)


def main() -> None:
    nprocs = 6
    print("=== 1. launch under the debugger ===")
    session = DebugSession(ring_reduce, nprocs)

    print("=== 2. stop mid-flight with a UserMonitor threshold ===")
    session.set_threshold(3, 2)  # park rank 3 at its 2nd instrumentation point
    summary = session.run()
    print(summary.describe())
    print("rank 3 is at:", session.where(3))

    print("\n=== 3. continue to completion ===")
    session.set_threshold(3, None)
    final = session.cont()
    print(final.describe())
    expected = sum(range(1, nprocs + 1))
    results = session.results()
    print(f"results: {results} (expected total {expected})")
    assert all(r == expected for r in results)

    print("\n=== 4. inspect the trace ===")
    trace = session.trace()
    print(f"{len(trace)} records; span t={trace.span[0]:.1f}..{trace.span[1]:.1f}")
    print(f"matched messages: {len(trace.message_pairs())}")
    for pair in trace.message_pairs()[:3]:
        print(
            f"  {pair.send.src}->{pair.recv.dst} tag={pair.send.tag} "
            f"latency={pair.latency:.2f} sent at {pair.send.location}"
        )

    print("\n=== 5. time-space diagram (NTV-style) ===")
    diagram = build_diagram(trace)
    print(render_ascii(diagram, columns=90))

    OUT_DIR.mkdir(exist_ok=True)
    svg_path = OUT_DIR / "quickstart_timespace.svg"
    save_svg(diagram, svg_path)
    print(f"\nSVG written to {svg_path}")
    session.shutdown()


if __name__ == "__main__":
    main()
